(* Tests for the structured telemetry layer (Ra_support.Telemetry):
   span nesting and depth accounting, counter totals, the disabled
   sink's no-op guarantee, serialization goldens, domain tagging, and
   the agreement between the pipeline's telemetry and its pass
   records. *)

open Ra_core
open Ra_support

let ev_name (e : Telemetry.event) = e.Telemetry.name

(* ---- disabled sink ---- *)

let disabled_is_noop () =
  let t = Telemetry.null in
  Alcotest.(check bool) "disabled" false (Telemetry.enabled t);
  let x =
    Telemetry.span t Phase.Build (fun () ->
      Telemetry.counter t "n" 3;
      Telemetry.instant t Phase.Lint;
      41 + 1)
  in
  Alcotest.(check int) "result passes through" 42 x;
  Alcotest.(check int) "no counters" 0 (Telemetry.counter_total t "n");
  Alcotest.(check int) "no events" 0 (List.length (Telemetry.events t));
  (* a disabled span still feeds a timer *)
  let tm = Timer.create () in
  ignore (Telemetry.span t ~timer:tm Phase.Color (fun () -> ()));
  Alcotest.(check bool) "timer phase recorded" true
    (List.mem_assoc Phase.Color (Timer.phases tm))

(* ---- span nesting ---- *)

let spans_nest () =
  let t = Telemetry.create () in
  Telemetry.span t Phase.Alloc (fun () ->
    Telemetry.span t Phase.Pass (fun () ->
      Telemetry.span t Phase.Build (fun () -> ());
      Telemetry.span t Phase.Color (fun () -> ())));
  (* spans are emitted at span end: children before parents *)
  Alcotest.(check (list string)) "emission order"
    [ "build"; "color"; "pass"; "alloc" ]
    (List.map ev_name (Telemetry.events t));
  let depth_of name =
    let e =
      List.find (fun e -> ev_name e = name) (Telemetry.events t)
    in
    e.Telemetry.depth
  in
  Alcotest.(check int) "alloc at depth 0" 0 (depth_of "alloc");
  Alcotest.(check int) "pass at depth 1" 1 (depth_of "pass");
  Alcotest.(check int) "build at depth 2" 2 (depth_of "build");
  Alcotest.(check int) "color at depth 2" 2 (depth_of "color");
  (* every child's wall extent lies within its parent's *)
  let span name =
    List.find (fun e -> ev_name e = name) (Telemetry.events t)
  in
  let within child parent =
    let c = span child and p = span parent in
    c.Telemetry.start_us >= p.Telemetry.start_us
    && c.Telemetry.start_us +. c.Telemetry.dur_us
       <= p.Telemetry.start_us +. p.Telemetry.dur_us +. 1e-6
  in
  Alcotest.(check bool) "build within pass" true (within "build" "pass");
  Alcotest.(check bool) "pass within alloc" true (within "pass" "alloc")

let span_survives_exceptions () =
  let t = Telemetry.create () in
  (try
     Telemetry.span t Phase.Build (fun () ->
       Telemetry.span t Phase.Scan (fun () -> raise Exit))
   with Exit -> ());
  Alcotest.(check (list string)) "both spans ended" [ "scan"; "build" ]
    (List.map ev_name (Telemetry.events t));
  (* depth stack unwound: a new span is back at depth 0 *)
  Telemetry.span t Phase.Color (fun () -> ());
  let last = List.nth (Telemetry.events t) 2 in
  Alcotest.(check int) "depth recovered" 0 last.Telemetry.depth

(* ---- counters and subscribers ---- *)

let counters_accumulate () =
  let t = Telemetry.create () in
  Telemetry.counter t "alloc.passes" 1;
  Telemetry.counter t "alloc.passes" 2;
  Telemetry.counter t "edge_cache.hits" 7;
  Alcotest.(check int) "running total" 3
    (Telemetry.counter_total t "alloc.passes");
  Alcotest.(check int) "independent names" 7
    (Telemetry.counter_total t "edge_cache.hits");
  Alcotest.(check int) "unknown name" 0 (Telemetry.counter_total t "nope");
  Alcotest.(check (list (pair string int))) "totals sorted by name"
    [ "alloc.passes", 3; "edge_cache.hits", 7 ]
    (Telemetry.counter_totals t);
  (* counter events carry the post-bump running total *)
  let values =
    List.filter_map
      (fun (e : Telemetry.event) ->
        if ev_name e = "alloc.passes" then Some e.Telemetry.value else None)
      (Telemetry.events t)
  in
  Alcotest.(check (list int)) "event values are running totals" [ 1; 3 ]
    values

let subscribers_see_events () =
  let t = Telemetry.create () in
  let seen = ref [] in
  Telemetry.subscribe t (fun e -> seen := ev_name e :: !seen);
  Telemetry.span t Phase.Build (fun () -> Telemetry.counter t "c" 1);
  Alcotest.(check (list string)) "fan-out in emission order"
    [ "c"; "build" ] (List.rev !seen)

(* ---- serialization goldens ---- *)

let golden_event =
  { Telemetry.kind = Telemetry.Span;
    name = "build";
    start_us = 12.5;
    dur_us = 100.25;
    domain = 3;
    depth = 1;
    value = 0;
    args = [ "proc", "svd"; "note", "a\"b" ] }

let jsonl_golden () =
  Alcotest.(check string) "jsonl line"
    "{\"kind\": \"span\", \"name\": \"build\", \"ts_us\": 12.500, \
     \"dur_us\": 100.250, \"domain\": 3, \"depth\": 1, \"value\": 0, \
     \"args\": {\"proc\": \"svd\", \"note\": \"a\\\"b\"}}"
    (Telemetry.jsonl_of_event golden_event);
  Alcotest.(check string) "chrome complete event"
    "{\"name\": \"build\", \"cat\": \"ra\", \"ph\": \"X\", \"ts\": 12.500, \
     \"dur\": 100.250, \"pid\": 0, \"tid\": 3, \
     \"args\": {\"proc\": \"svd\", \"note\": \"a\\\"b\"}}"
    (Telemetry.chrome_of_event golden_event)

let writers_produce_valid_json () =
  let t = Telemetry.create () in
  Telemetry.span t Phase.Alloc (fun () -> Telemetry.counter t "k" 1);
  Telemetry.instant t Phase.Lint;
  let render write =
    let path = Filename.temp_file "tele" ".json" in
    let oc = open_out path in
    write t oc;
    close_out oc;
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove path;
    s
  in
  let chrome = render Telemetry.write_chrome in
  Alcotest.(check bool) "chrome output is a JSON array" true
    (String.length chrome > 2 && chrome.[0] = '[');
  Alcotest.(check bool) "chrome output closes the array" true
    (String.contains chrome ']');
  let jsonl = render Telemetry.write_jsonl in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)
  in
  Alcotest.(check int) "one JSONL line per event" 3 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "line is an object" true
        (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines

(* ---- domain tagging ---- *)

let spans_are_domain_tagged () =
  let t = Telemetry.create () in
  Telemetry.span t Phase.Alloc (fun () -> ());
  let d =
    Domain.spawn (fun () ->
      Telemetry.span t Phase.Scan (fun () -> ());
      (Domain.self () :> int))
  in
  let worker_id = Domain.join d in
  let find name = List.find (fun e -> ev_name e = name) (Telemetry.events t) in
  Alcotest.(check int) "worker span carries the worker's domain id"
    worker_id (find "scan").Telemetry.domain;
  Alcotest.(check bool) "distinct from the main domain" true
    ((find "scan").Telemetry.domain <> (find "alloc").Telemetry.domain);
  (* each domain nests independently: the worker span started fresh *)
  Alcotest.(check int) "worker depth independent of main" 0
    (find "scan").Telemetry.depth

(* ---- the pipeline reports into the tree it promises ---- *)

let pipeline_telemetry_agrees_with_pass_records () =
  let machine =
    { (Machine.with_int_regs Machine.rt_pc 3) with Machine.flt_regs = 8 }
  in
  let procs = Ra_ir.Codegen.compile_source Test_context.spilling_src in
  Ra_opt.Opt.optimize_all procs;
  let proc = List.hd procs in
  let tele = Telemetry.create () in
  let ctx = Context.create ~tele ~jobs:1 machine in
  let r = Allocator.allocate ~context:ctx machine Heuristic.Briggs proc in
  let n_passes = List.length r.Allocator.passes in
  Alcotest.(check bool) "multi-pass (the test needs spilling)" true
    (n_passes > 1);
  (* the pipeline's counters equal the pass-record sums exactly *)
  Alcotest.(check int) "alloc.procs" 1 (Telemetry.counter_total tele "alloc.procs");
  Alcotest.(check int) "alloc.passes" n_passes
    (Telemetry.counter_total tele "alloc.passes");
  Alcotest.(check int) "alloc.spilled" r.Allocator.total_spilled
    (Telemetry.counter_total tele "alloc.spilled");
  Alcotest.(check int) "alloc.moves_removed" r.Allocator.moves_removed
    (Telemetry.counter_total tele "alloc.moves_removed");
  Alcotest.(check int) "edge_cache.hits"
    (List.fold_left
       (fun acc (p : Allocator.pass_record) -> acc + p.Allocator.cache_hits)
       0 r.Allocator.passes)
    (Telemetry.counter_total tele "edge_cache.hits");
  Alcotest.(check int) "edge_cache.misses"
    (List.fold_left
       (fun acc (p : Allocator.pass_record) -> acc + p.Allocator.cache_misses)
       0 r.Allocator.passes)
    (Telemetry.counter_total tele "edge_cache.misses");
  (* the span tree: one alloc root, one pass span per pass record, and
     every stage phase appears under it *)
  let count name =
    List.length
      (List.filter
         (fun (e : Telemetry.event) ->
           e.Telemetry.kind = Telemetry.Span && ev_name e = name)
         (Telemetry.events tele))
  in
  Alcotest.(check int) "one alloc span" 1 (count "alloc");
  Alcotest.(check int) "one pass span per pass" n_passes (count "pass");
  List.iter
    (fun phase ->
      Alcotest.(check bool)
        (Printf.sprintf "phase %S traced" (Phase.name phase))
        true
        (count (Phase.name phase) > 0))
    [ Phase.Build; Phase.Simplify; Phase.Color; Phase.Scan; Phase.Liveness;
      Phase.Spill_elect; Phase.Spill_insert; Phase.Rewrite ];
  (* wall-clock spans and the CPU pass records measure the same tree: on
     this single-threaded run each phase's total span time must be at
     least the recorded CPU time, within generous tolerance *)
  let span_total name =
    List.fold_left
      (fun acc (e : Telemetry.event) ->
        if e.Telemetry.kind = Telemetry.Span && ev_name e = name then
          acc +. e.Telemetry.dur_us
        else acc)
      0.0 (Telemetry.events tele)
    /. 1e6
  in
  let cpu field =
    List.fold_left
      (fun acc p -> acc +. field p)
      0.0 r.Allocator.passes
  in
  List.iter
    (fun (name, field) ->
      let wall = span_total name and cpu_s = cpu field in
      Alcotest.(check bool)
        (Printf.sprintf "%s: wall %.6fs covers cpu %.6fs" name wall cpu_s)
        true
        (wall +. 0.05 >= cpu_s))
    [ "build", (fun (p : Allocator.pass_record) -> p.Allocator.build_time);
      "simplify", (fun p -> p.Allocator.simplify_time);
      "color", (fun p -> p.Allocator.color_time);
      "spill-insert", (fun p -> p.Allocator.spill_time) ]

let suites =
  [ ( "support.telemetry",
      [ Alcotest.test_case "disabled sink is a no-op" `Quick disabled_is_noop;
        Alcotest.test_case "spans nest with depths" `Quick spans_nest;
        Alcotest.test_case "spans survive exceptions" `Quick
          span_survives_exceptions;
        Alcotest.test_case "counters accumulate" `Quick counters_accumulate;
        Alcotest.test_case "subscribers see every event" `Quick
          subscribers_see_events;
        Alcotest.test_case "jsonl/chrome goldens" `Quick jsonl_golden;
        Alcotest.test_case "writers produce valid JSON" `Quick
          writers_produce_valid_json;
        Alcotest.test_case "spans are domain-tagged" `Quick
          spans_are_domain_tagged;
        Alcotest.test_case "pipeline telemetry matches pass records" `Quick
          pipeline_telemetry_agrees_with_pass_records ] ) ]
