(* Tests for the speculative parallel Simplify engine
   (Ra_core.Par_simplify): the emitted removal order, spill elections
   and Chaitin marks must be bit-identical to Coloring.simplify at
   every pool width, for every policy, on synthetic graphs, random
   graphs and the real program suite — and the engine's worker tasks
   must be visible to the footprint race-detection layer. *)

open Ra_ir
open Ra_core

let qtest = QCheck_alcotest.to_alcotest

let with_pool ~jobs f =
  let pool = Ra_support.Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Ra_support.Pool.shutdown pool)
    (fun () -> f pool)

let make_power_law () =
  Synth_graph.power_law ~seed:42 ~n_nodes:5000 ~n_precolored:32 ~avg_degree:8

let make_geometric () =
  Synth_graph.geometric ~seed:42 ~n_nodes:5000 ~n_precolored:32 ~avg_degree:8

(* deterministic costs with a sprinkle of unspillable nodes, so both
   the ratio argmin and the infinite-cost fallback paths are walked *)
let mk_costs n =
  Array.init n (fun i ->
    if i mod 97 = 0 then infinity else float_of_int (1 + (i * 7 mod 13)))

let policies =
  [ ("chaitin", Coloring.Spill_during_simplify);
    ("briggs", Coloring.Defer_to_select) ]

(* ---- engine vs sequential baseline on synthetic graphs ---- *)

let engine_identical_at_width jobs () =
  List.iter
    (fun g ->
      let view = Synth_graph.view g in
      let n = Synth_graph.n_nodes g in
      let costs = mk_costs n in
      let degree = Synth_graph.degree g in
      List.iter
        (fun k ->
          List.iter
            (fun (pname, policy) ->
              let base =
                Par_simplify.simplify_view_seq ~degree view ~k ~costs ~policy
              in
              with_pool ~jobs (fun pool ->
                let stats = ref Par_simplify.no_stats in
                let spec =
                  Par_simplify.simplify_view ~degree ~pool ~stats view ~k
                    ~costs ~policy
                in
                Alcotest.(check bool)
                  (Printf.sprintf "%s k=%d width=%d identical" pname k jobs)
                  true (spec = base);
                if jobs > 1 then
                  Alcotest.(check bool) "engine engaged" true
                    !stats.Par_simplify.engaged))
            policies)
        [ 4; 8; 16 ])
    [ make_power_law (); make_geometric () ]

let stats_width_independent () =
  (* chunking does not depend on the worker count, so the peel/defer
     counters must agree between widths — they are part of the
     deterministic story the bench reports *)
  let g = make_power_law () in
  let view = Synth_graph.view g in
  let costs = mk_costs (Synth_graph.n_nodes g) in
  let degree = Synth_graph.degree g in
  let stats_at jobs =
    with_pool ~jobs (fun pool ->
      let stats = ref Par_simplify.no_stats in
      ignore
        (Par_simplify.simplify_view ~degree ~pool ~stats view ~k:8 ~costs
           ~policy:Coloring.Defer_to_select);
      !stats)
  in
  let s2 = stats_at 2 and s8 = stats_at 8 in
  Alcotest.(check bool) "same counters at width 2 and 8" true (s2 = s8)

(* ---- Igraph drop-in with the built-in cross-check ---- *)

let igraph_drop_in_verifies () =
  let g = Synth_graph.to_igraph (make_geometric ()) in
  let costs = mk_costs (Igraph.n_nodes g) in
  List.iter
    (fun (pname, policy) ->
      let want = Coloring.simplify g ~k:8 ~costs ~policy in
      with_pool ~jobs:4 (fun pool ->
        let got = Par_simplify.simplify ~pool ~verify:true g ~k:8 ~costs ~policy in
        Alcotest.(check bool) (pname ^ " drop-in identical") true (got = want)))
    policies

(* ---- qcheck: random graphs, random widths, both policies ---- *)

let qcheck_equivalence =
  QCheck.Test.make ~count:30
    ~name:"parallel simplify = sequential on random graphs (any width)"
    QCheck.(pair (int_bound 100000) (int_range 0 5))
    (fun (seed, shape) ->
      let rng = Ra_support.Lcg.create ~seed in
      let n = 600 + Ra_support.Lcg.int rng 400 in
      let pre = if shape mod 2 = 0 then 0 else 8 in
      let g = Igraph.create ~n_nodes:n ~n_precolored:pre in
      let per_node = 3 + (shape mod 3) * 2 in
      for a = 0 to n - 1 do
        for _ = 1 to per_node do
          let b = Ra_support.Lcg.int rng n in
          if b <> a then Igraph.add_edge g a b
        done
      done;
      let costs =
        Array.init n (fun i ->
          if (i + seed) mod 53 = 0 then infinity
          else float_of_int (1 + Ra_support.Lcg.int rng 100))
      in
      let jobs = [| 2; 4; 8 |].(shape mod 3) in
      List.for_all
        (fun (_, policy) ->
          let k = 4 + (shape mod 2) * 4 in
          let want = Coloring.simplify g ~k ~costs ~policy in
          with_pool ~jobs (fun pool ->
            let got = Par_simplify.simplify ~pool g ~k ~costs ~policy in
            got = want))
        policies)

(* ---- through the heuristics and the full allocator ---- *)

let with_low_floors f =
  Par_simplify.set_min_nodes (Some 1);
  Par_color.set_min_nodes (Some 1);
  Fun.protect
    ~finally:(fun () ->
      Par_simplify.set_min_nodes None;
      Par_color.set_min_nodes None)
    f

let engine_through_heuristics () =
  let rng = Ra_support.Lcg.create ~seed:5 in
  let g = Igraph.create ~n_nodes:700 ~n_precolored:0 in
  for a = 0 to 699 do
    for _ = 1 to 6 do
      let b = Ra_support.Lcg.int rng 700 in
      if b <> a then Igraph.add_edge g a b
    done
  done;
  let costs = Array.init 700 (fun i -> float_of_int (1 + (i * 7 mod 13))) in
  with_low_floors (fun () ->
    with_pool ~jobs:3 (fun pool ->
      List.iter
        (fun h ->
          List.iter
            (fun k ->
              let seq = Heuristic.run h g ~k ~costs in
              let par = Heuristic.run ~pool ~verify:true h g ~k ~costs in
              Alcotest.(check bool)
                (Printf.sprintf "%s k=%d outcome identical" (Heuristic.name h)
                   k)
                true (seq = par))
            [ 4; 8 ])
        [ Heuristic.Chaitin; Heuristic.Briggs; Heuristic.Matula ]))

let strip_times (p : Allocator.pass_record) =
  ( p.Allocator.pass_index,
    p.Allocator.webs_initial,
    p.Allocator.webs_coalesced,
    p.Allocator.nodes_int,
    p.Allocator.nodes_flt,
    p.Allocator.edges_int,
    p.Allocator.edges_flt,
    p.Allocator.spilled,
    p.Allocator.spill_cost )

let fingerprint (r : Allocator.result) =
  ( List.map strip_times r.Allocator.passes,
    r.Allocator.live_ranges,
    r.Allocator.total_spilled,
    r.Allocator.total_spill_cost,
    r.Allocator.moves_removed,
    Proc.to_string r.Allocator.proc )

let suite_allocations_unchanged () =
  (* the whole suite through the full allocator, parallel engines
     forced on at width 4, with and without the edge cache: every
     fingerprint must match the sequential allocation *)
  let machine = Machine.rt_pc in
  with_low_floors (fun () ->
    List.iter
      (fun (prog : Ra_programs.Suite.program) ->
        let procs = Ra_programs.Suite.compile prog in
        List.iter
          (fun (p : Proc.t) ->
            let base =
              Allocator.allocate
                ~context:(Context.create ~jobs:1 machine)
                machine Heuristic.Briggs p
            in
            List.iter
              (fun edge_cache ->
                let par =
                  Allocator.allocate
                    ~context:(Context.create ~edge_cache ~jobs:4 machine)
                    machine Heuristic.Briggs p
                in
                Alcotest.(check bool)
                  (Printf.sprintf "%s/%s cache=%b identical"
                     prog.Ra_programs.Suite.pname p.Proc.name edge_cache)
                  true
                  (fingerprint par = fingerprint base))
              [ true; false ])
          procs)
      [ Ra_programs.Suite.quicksort; Ra_programs.Suite.find "EULER" ])

(* ---- race-detection coverage ---- *)

let footprint_overlap_rejected () =
  Ra_check.Effects.install ();
  let g = make_power_law () in
  let view = Synth_graph.view g in
  let costs = mk_costs (Synth_graph.n_nodes g) in
  Par_simplify.seeded_footprint_overlap := true;
  Fun.protect
    ~finally:(fun () -> Par_simplify.seeded_footprint_overlap := false)
    (fun () ->
      with_pool ~jobs:2 (fun pool ->
        match
          Par_simplify.simplify_view ~pool view ~k:8 ~costs
            ~policy:Coloring.Defer_to_select
        with
        | _ -> Alcotest.fail "overlapping footprints dispatched"
        | exception Ra_check.Effects.Conflict _ -> ()))

let suites =
  [ ( "core.par_simplify",
      [ Alcotest.test_case "identical at width 1" `Quick
          (engine_identical_at_width 1);
        Alcotest.test_case "identical at width 2" `Quick
          (engine_identical_at_width 2);
        Alcotest.test_case "identical at width 4" `Quick
          (engine_identical_at_width 4);
        Alcotest.test_case "identical at width 8" `Quick
          (engine_identical_at_width 8);
        Alcotest.test_case "stats width-independent" `Quick
          stats_width_independent;
        Alcotest.test_case "igraph drop-in verifies" `Quick
          igraph_drop_in_verifies;
        qtest qcheck_equivalence;
        Alcotest.test_case "heuristic outcomes unchanged" `Quick
          engine_through_heuristics;
        Alcotest.test_case "suite allocations unchanged" `Slow
          suite_allocations_unchanged;
        Alcotest.test_case "footprint overlap rejected" `Quick
          footprint_overlap_rejected ] ) ]
