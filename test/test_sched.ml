(* Tests for the work-stealing task-DAG scheduler
   (Ra_support.Scheduler) and its footprint-derived dependency edges:
   conflicting submissions serialize in submission order at every
   width, disjoint tasks all run, explicit [after] edges hold, tasks
   submit successors dynamically, exceptions poison the scope and
   propagate, the Pool façade batches interleave, the edge-derivation
   rule (Ra_check.Effects.edges) matches what the scheduler enforces,
   a seeded missing edge is flagged by the race detector as a data
   race, and the DAG allocation matrix is bit-identical to the flat
   dispatch across widths and edge-cache settings. *)

open Ra_support
open Ra_core

let qtest = QCheck_alcotest.to_alcotest

exception Boom of int

let with_sched ~jobs f =
  let s = Scheduler.create ~jobs in
  Fun.protect ~finally:(fun () -> Scheduler.shutdown s) (fun () -> f s)

let fp ?(reads = []) ?(writes = []) () = { Footprint.reads; writes }

(* every task writes the same token: total serialization, submission
   order *)
let conflicting_tasks_serialize () =
  List.iter
    (fun jobs ->
      with_sched ~jobs (fun s ->
        let n = 40 in
        let order = ref [] in
        Scheduler.run s (fun () ->
          for i = 0 to n - 1 do
            ignore
              (Scheduler.submit s
                 ~name:(Printf.sprintf "t%d" i)
                 ~footprint:(fp ~writes:[ Footprint.State 0 ] ())
                 (fun () -> order := i :: !order))
          done);
        Alcotest.(check (list int))
          (Printf.sprintf "jobs=%d: submission order" jobs)
          (List.init n (fun i -> i))
          (List.rev !order)))
    [ 1; 2; 4; 8 ]

let disjoint_tasks_all_run () =
  List.iter
    (fun jobs ->
      with_sched ~jobs (fun s ->
        let n = 64 in
        let hits = Array.make n 0 in
        let m = Mutex.create () in
        Scheduler.run s (fun () ->
          for i = 0 to n - 1 do
            ignore
              (Scheduler.submit s
                 ~name:(Printf.sprintf "t%d" i)
                 ~footprint:(fp ~writes:[ Footprint.State i ] ())
                 (fun () ->
                   Mutex.lock m;
                   hits.(i) <- hits.(i) + 1;
                   Mutex.unlock m))
          done);
        Alcotest.(check bool)
          (Printf.sprintf "jobs=%d: each task exactly once" jobs)
          true
          (Array.for_all (fun c -> c = 1) hits)))
    [ 1; 3; 8 ]

let explicit_after_orders () =
  with_sched ~jobs:4 (fun s ->
    (* disjoint footprints, so only the explicit edge can order them *)
    let order = ref [] in
    let push i = order := i :: !order in
    Scheduler.run s (fun () ->
      let a =
        Scheduler.submit s ~name:"a"
          ~footprint:(fp ~writes:[ Footprint.State 1 ] ())
          (fun () -> push 1)
      in
      ignore
        (Scheduler.submit s ~after:[ a ] ~name:"b"
           ~footprint:(fp ~writes:[ Footprint.State 2 ] ())
           (fun () -> push 2)));
    Alcotest.(check (list int)) "after edge held" [ 1; 2 ] (List.rev !order))

(* a task submits its successor from inside itself — the spill-driven
   pass loop's shape; the chain must still serialize *)
let dynamic_submission_chains () =
  List.iter
    (fun jobs ->
      with_sched ~jobs (fun s ->
        let order = ref [] in
        let rec step i =
          order := i :: !order;
          if i < 9 then
            ignore
              (Scheduler.submit s
                 ~name:(Printf.sprintf "step%d" (i + 1))
                 ~footprint:(fp ~writes:[ Footprint.State 7 ] ())
                 (fun () -> step (i + 1)))
        in
        Scheduler.run s (fun () ->
          ignore
            (Scheduler.submit s ~name:"step0"
               ~footprint:(fp ~writes:[ Footprint.State 7 ] ())
               (fun () -> step 0)));
        Alcotest.(check (list int))
          (Printf.sprintf "jobs=%d: dynamic chain in order" jobs)
          (List.init 10 (fun i -> i))
          (List.rev !order)))
    [ 1; 4 ]

let exception_poisons_scope () =
  List.iter
    (fun jobs ->
      with_sched ~jobs (fun s ->
        let ran_dependent = ref false in
        (match
           Scheduler.run s (fun () ->
             ignore
               (Scheduler.submit s ~name:"boom"
                  ~footprint:(fp ~writes:[ Footprint.State 0 ] ())
                  (fun () -> raise (Boom 7)));
             (* conflicts with (and so follows) the failing task — it
                must be skipped, not run *)
             ignore
               (Scheduler.submit s ~name:"after-boom"
                  ~footprint:(fp ~reads:[ Footprint.State 0 ] ())
                  (fun () -> ran_dependent := true)))
         with
        | () -> Alcotest.fail "task exception was swallowed"
        | exception Boom 7 -> ()
        | exception Boom i -> Alcotest.failf "wrong payload %d" i);
        Alcotest.(check bool)
          (Printf.sprintf "jobs=%d: dependent skipped" jobs)
          false !ran_dependent;
        (* the scheduler survives a poisoned scope *)
        let ok = ref false in
        Scheduler.run s (fun () ->
          ignore
            (Scheduler.submit s ~name:"again"
               ~footprint:(fp ~writes:[ Footprint.State 0 ] ())
               (fun () -> ok := true)));
        Alcotest.(check bool)
          (Printf.sprintf "jobs=%d: usable after failure" jobs)
          true !ok))
    [ 1; 4 ]

let pool_facade_batches () =
  with_sched ~jobs:4 (fun s ->
    let pool = Scheduler.pool s in
    Alcotest.(check (list int)) "map_list via the façade"
      [ 1; 3; 5; 7 ]
      (Pool.map_list pool (fun x -> (2 * x) + 1) [ 0; 1; 2; 3 ]);
    (* batches issued from inside a DAG task interleave with the graph
       (the shared build's sharded scan does exactly this) *)
    let total = ref 0 in
    let m = Mutex.create () in
    Scheduler.run s (fun () ->
      ignore
        (Scheduler.submit s ~name:"outer"
           ~footprint:(fp ~writes:[ Footprint.State 0 ] ())
           (fun () ->
             Pool.run pool ~n:16 (fun _ ->
               Mutex.lock m;
               incr total;
               Mutex.unlock m))));
    Alcotest.(check int) "nested batch ran fully" 16 !total)

let stats_count_tasks_and_edges () =
  with_sched ~jobs:2 (fun s ->
    Scheduler.reset_stats s;
    let tele = Telemetry.create () in
    Scheduler.set_telemetry s tele;
    Scheduler.run s (fun () ->
      (* 3 conflicting tasks: edges 0->1, 0->2, 1->2 *)
      for i = 0 to 2 do
        ignore
          (Scheduler.submit s
             ~name:(Printf.sprintf "t%d" i)
             ~footprint:(fp ~writes:[ Footprint.State 0 ] ())
             (fun () -> ()))
      done;
      (* and one disjoint: no edges *)
      ignore
        (Scheduler.submit s ~name:"free"
           ~footprint:(fp ~writes:[ Footprint.State 1 ] ())
           (fun () -> ())));
    let st = Scheduler.stats s in
    Alcotest.(check int) "tasks" 4 st.Scheduler.tasks;
    Alcotest.(check int) "edges" 3 st.Scheduler.edges;
    Alcotest.(check int) "sched.tasks counter" 4
      (Telemetry.counter_total tele "sched.tasks");
    Alcotest.(check int) "sched.edges counter" 3
      (Telemetry.counter_total tele "sched.edges");
    Alcotest.(check bool) "queue high-water positive" true
      (st.Scheduler.max_queue_depth >= 1))

(* ---- the edge-derivation rule ---- *)

let meta name footprint = { Pool.tm_name = name; tm_footprint = footprint }

let edges_serialize_conflicts () =
  let w tok = fp ~writes:[ Footprint.State tok ] () in
  let r tok = fp ~reads:[ Footprint.State tok ] () in
  Alcotest.(check (list (pair int int)))
    "write-write pair serializes"
    [ (0, 1) ]
    (Ra_check.Effects.edges [| meta "a" (w 3); meta "b" (w 3) |]);
  Alcotest.(check (list (pair int int)))
    "read-write pair serializes"
    [ (0, 1) ]
    (Ra_check.Effects.edges [| meta "a" (r 3); meta "b" (w 3) |]);
  Alcotest.(check (list (pair int int)))
    "disjoint tokens do not"
    []
    (Ra_check.Effects.edges [| meta "a" (w 1); meta "b" (w 2) |]);
  Alcotest.(check (list (pair int int)))
    "read-read does not"
    []
    (Ra_check.Effects.edges [| meta "a" (r 3); meta "b" (r 3) |]);
  (* the synchronized telemetry sink never induces an edge *)
  let t = fp ~writes:[ Footprint.Telemetry ] () in
  Alcotest.(check (list (pair int int)))
    "telemetry writes do not" []
    (Ra_check.Effects.edges [| meta "a" t; meta "b" t |]);
  (* a pipeline shape: build writes the token every stage reads *)
  Alcotest.(check (list (pair int int)))
    "fan-out from a shared build"
    [ (0, 1); (0, 2) ]
    (Ra_check.Effects.edges
       [| meta "build" (w 9); meta "color-a" (r 9); meta "color-b" (r 9) |])

(* ---- the race detector must police the schedule ---- *)

(* two tasks declare disjoint State tokens (so no edge is derived) but
   both write one hooked bitset: the happens-before replay of the DAG
   must flag the missing edge as a data race. Threads are task
   executions, so this holds even when one domain serializes them. *)
let seeded_missing_edge_is_caught () =
  with_sched ~jobs:2 (fun s ->
    let shared = Bitset.create 64 in
    let _, diags =
      Ra_check.Race.with_check (fun () ->
        Scheduler.run s (fun () ->
          for i = 0 to 1 do
            ignore
              (Scheduler.submit s
                 ~name:(Printf.sprintf "liar%d" i)
                 ~footprint:(fp ~writes:[ Footprint.State i ] ())
                 (fun () -> Bitset.add shared i))
          done))
    in
    Alcotest.(check bool) "missing edge reported as a data race" true
      (List.exists
         (fun d ->
           Ra_check.Diagnostic.is_error d
           && d.Ra_check.Diagnostic.check = "data-race")
         diags));
  (* the control: identical bodies, but the footprints tell the truth —
     one token, so the derived edge orders them and the run is clean *)
  with_sched ~jobs:2 (fun s ->
    let shared = Bitset.create 64 in
    let _, diags =
      Ra_check.Race.with_check (fun () ->
        Scheduler.run s (fun () ->
          for i = 0 to 1 do
            ignore
              (Scheduler.submit s
                 ~name:(Printf.sprintf "honest%d" i)
                 ~footprint:(fp ~writes:[ Footprint.State 0 ] ())
                 (fun () -> Bitset.add shared i))
          done))
    in
    Alcotest.(check string) "derived edge orders the pair" ""
      (String.concat "\n"
         (List.map Ra_check.Diagnostic.to_string
            (Ra_check.Diagnostic.errors diags))))

(* ---- DAG ≡ flat on real allocations ---- *)

let machine = Machine.rt_pc
let heuristics = [ Heuristic.Chaitin; Heuristic.Briggs; Heuristic.Matula ]

let fingerprint (r : Allocator.result) =
  ( List.map
      (fun (p : Allocator.pass_record) ->
        ( p.pass_index, p.webs_initial, p.webs_coalesced, p.nodes_int,
          p.nodes_flt, p.edges_int, p.edges_flt, p.spilled, p.spill_cost ))
      r.Allocator.passes,
    r.Allocator.live_ranges,
    r.Allocator.total_spilled,
    r.Allocator.total_spill_cost,
    r.Allocator.moves_removed,
    Ra_ir.Proc.to_string r.Allocator.proc )

let dag_matrix_matches_flat_on_suite () =
  let procs = Ra_programs.Suite.compile Ra_programs.Suite.quicksort in
  let flat =
    Batch.allocate_matrix ~sched:Batch.Flat machine heuristics procs
  in
  List.iter
    (fun jobs ->
      with_sched ~jobs (fun s ->
        let dag =
          Batch.allocate_matrix ~sched:Batch.Dag ~scheduler:s machine
            heuristics procs
        in
        Alcotest.(check bool)
          (Printf.sprintf "jobs=%d: quicksort matrix bit-identical" jobs)
          true
          (List.for_all2
             (fun f d -> List.for_all2 (fun a b -> fingerprint a = fingerprint b) f d)
             flat dag)))
    [ 1; 2; 4; 8 ]

let prop_dag_equals_flat =
  QCheck.Test.make
    ~name:"random programs: DAG matrix ≡ flat dispatch (jobs x edge cache)"
    ~count:6
    QCheck.(quad (int_bound 1000000) (int_range 5 25) (oneofl [ 2; 4; 8 ]) bool)
    (fun (seed, size, jobs, edge_cache) ->
      let src = Progen.generate ~seed ~size in
      let procs = Ra_ir.Codegen.compile_source src in
      let flat =
        Batch.allocate_matrix ~sched:Batch.Flat ~edge_cache machine heuristics
          procs
      in
      with_sched ~jobs (fun s ->
        let dag =
          Batch.allocate_matrix ~sched:Batch.Dag ~scheduler:s ~edge_cache
            machine heuristics procs
        in
        let same =
          List.for_all2
            (fun f d ->
              List.for_all2 (fun a b -> fingerprint a = fingerprint b) f d)
            flat dag
        in
        if not same then
          QCheck.Test.fail_reportf
            "DAG and flat outcomes diverge (seed %d, size %d, jobs %d, \
             cache %b)"
            seed size jobs edge_cache;
        (* the schedules the two modes derived must also agree on the
           adjacency rule: re-deriving edges from the footprints the
           matrix would declare is pure (Effects.edges), so spot-check
           the rule's symmetry on the tokens it uses *)
        true))

let suites =
  [ ( "sched",
      [ Alcotest.test_case "conflicting tasks serialize" `Quick
          conflicting_tasks_serialize;
        Alcotest.test_case "disjoint tasks all run" `Quick
          disjoint_tasks_all_run;
        Alcotest.test_case "explicit after orders" `Quick explicit_after_orders;
        Alcotest.test_case "dynamic submission chains" `Quick
          dynamic_submission_chains;
        Alcotest.test_case "exception poisons scope" `Quick
          exception_poisons_scope;
        Alcotest.test_case "pool facade batches" `Quick pool_facade_batches;
        Alcotest.test_case "stats and counters" `Quick
          stats_count_tasks_and_edges;
        Alcotest.test_case "edge derivation" `Quick edges_serialize_conflicts;
        Alcotest.test_case "seeded missing edge is caught" `Quick
          seeded_missing_edge_is_caught;
        Alcotest.test_case "DAG matrix matches flat on quicksort" `Quick
          dag_matrix_matches_flat_on_suite;
        qtest prop_dag_equals_flat ] ) ]
