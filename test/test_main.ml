(* Entry point aggregating every test suite in the repository. *)

let () =
  Alcotest.run "regalloc"
    (Test_support.suites
    @ Test_pool.suites
    @ Test_sched.suites
    @ Test_frontend.suites
    @ Test_ir.suites
    @ Test_analysis.suites
    @ Test_opt.suites
    @ Test_coloring.suites
    @ Test_alloc.suites
    @ Test_context.suites
    @ Test_check.suites
    @ Test_race.suites
    @ Test_build.suites
    @ Test_pipeline.suites
    @ Test_telemetry.suites
    @ Test_spill.suites
    @ Test_manyargs.suites
    @ Test_vm.suites
    @ Test_programs.suites
    @ Test_synth.suites
    @ Test_par_simplify.suites
    @ Test_shapes.suites)
