(* Unit tests for the Build phase: interference edges, call clobbers,
   entry interference, and aggressive coalescing. *)

open Ra_ir
open Ra_analysis
open Ra_core

let build_of src =
  let p = List.hd (Codegen.compile_source src) in
  let cfg = Cfg.build p.Proc.code in
  let webs = Webs.build p cfg ~is_spill_vreg:(fun _ -> false) in
  p, webs, Build.build Machine.rt_pc p cfg ~webs ()

(* the web holding a named user variable: found through its Mov defs *)
let web_of_assignments (p : Proc.t) webs built ~nth_mov =
  let movs = ref [] in
  Array.iteri
    (fun i (nd : Proc.node) ->
      match nd.Proc.ins with
      | Instr.Mov (d, _) -> movs := (i, d) :: !movs
      | _ -> ())
    p.Proc.code;
  let i, d = List.nth (List.rev !movs) nth_mov in
  Build.node_of built (Webs.def_web webs i d)

let overlapping_vars_interfere () =
  let src =
    {| proc f(n: int) : int {
         var a: int; var b: int;
         a = n + 1;
         b = n + 2;
         return a + b;
       } |}
  in
  let p, webs, built = build_of src in
  (* a and b are simultaneously live at the return expression *)
  let na = web_of_assignments p webs built ~nth_mov:0 in
  let nb = web_of_assignments p webs built ~nth_mov:1 in
  Alcotest.(check bool) "a interferes b" true
    (Igraph.interferes built.Build.int_graph na nb)

let disjoint_vars_coalesce_or_dont_interfere () =
  let src =
    {| proc f(n: int) : int {
         var a: int; var b: int;
         a = n + 1;
         print_int(a);
         b = n + 2;
         return b;
       } |}
  in
  let p, webs, built = build_of src in
  let na = web_of_assignments p webs built ~nth_mov:0 in
  let nb = web_of_assignments p webs built ~nth_mov:1 in
  (* with disjoint lifetimes they either merged (same node) or at least
     do not interfere *)
  Alcotest.(check bool) "no conflict" true
    (na = nb || not (Igraph.interferes built.Build.int_graph na nb))

let call_clobbers_across () =
  (* s is live across the call, so it interferes with every caller-save
     float register and cannot be colored into one *)
  let src =
    {| proc g() { print_int(1); }
       proc f(x: float) : float {
         var s: float;
         s = x * 2.0;
         g();
         return s + 1.0;
       } |}
  in
  let procs = Codegen.compile_source src in
  let p = List.find (fun (q : Proc.t) -> q.Proc.name = "f") procs in
  let cfg = Cfg.build p.Proc.code in
  let webs = Webs.build p cfg ~is_spill_vreg:(fun _ -> false) in
  let built = Build.build Machine.rt_pc p cfg ~webs () in
  (* find the float web live across the call: the one defined by a Mov *)
  let s_node = ref None in
  Array.iteri
    (fun i (nd : Proc.node) ->
      match nd.Proc.ins with
      | Instr.Mov (d, _) when d.Reg.cls = Reg.Flt_reg ->
        s_node := Some (Build.node_of built (Webs.def_web webs i d))
      | _ -> ())
    p.Proc.code;
  let s_node = Option.get !s_node in
  List.iter
    (fun phys ->
      Alcotest.(check bool)
        (Printf.sprintf "clobbers F%d" phys)
        true
        (Igraph.interferes built.Build.flt_graph phys s_node))
    (Machine.caller_save Machine.rt_pc Reg.Flt_reg);
  (* and under allocation it lands in a callee-save register *)
  let r = Allocator.allocate Machine.rt_pc Heuristic.Briggs p in
  Alcotest.(check int) "no spill needed" 0 r.Allocator.total_spilled

let entry_args_interfere () =
  let src = "proc f(a: int, b: int) : int { return a + b; }" in
  let _, webs, built = build_of src in
  (match Webs.entry_webs webs with
   | [ wa; wb ] ->
     Alcotest.(check bool) "arguments interfere at entry" true
       (Igraph.interferes built.Build.int_graph
          (Build.node_of built wa) (Build.node_of built wb))
   | ws -> Alcotest.failf "expected 2 entry webs, got %d" (List.length ws))

let coalescing_merges_copy_chain () =
  let src =
    {| proc f(n: int) : int {
         var a: int; var b: int;
         a = n * 3;
         b = a;
         return b + 1;
       } |}
  in
  let p, webs, built = build_of src in
  ignore p;
  ignore webs;
  (* t = n*3 feeds a, a feeds b: two copies between non-interfering webs *)
  Alcotest.(check bool) "both copies coalesced" true
    (built.Build.moves_coalesced >= 2)

let coalesce_refuses_interfering () =
  (* b = a where a stays live afterwards and b is redefined while a
     lives: they interfere, so the copy must NOT be merged *)
  let src =
    {| proc f(n: int) : int {
         var a: int; var b: int;
         a = n * 3;
         b = a;
         b = b + n;
         return a + b;
       } |}
  in
  let p, webs, built = build_of src in
  (* find the copy instruction b = a: a Mov whose source is another
     user variable's register (not a fresh temp): check semantics by
     allocation instead *)
  ignore (p, webs);
  let check =
    Igraph.check_coloring built.Build.int_graph
      ~colors:
        (match
           Heuristic.run Heuristic.Briggs built.Build.int_graph
             ~k:(Machine.regs Machine.rt_pc Reg.Int_reg)
             ~costs:
               (Array.make (Igraph.n_nodes built.Build.int_graph) 1.0)
         with
         | Heuristic.Colored colors -> colors
         | Heuristic.Spill _ -> Alcotest.fail "unexpected spill")
  in
  Alcotest.(check bool) "proper coloring despite copy" true (check = None);
  (* end-to-end correctness seals it *)
  let r = Allocator.allocate Machine.rt_pc Heuristic.Briggs p in
  let out =
    Ra_vm.Exec.run ~procs:[ r.Allocator.proc ] ~entry:"f"
      ~args:[ Ra_vm.Value.Vint 5 ] ()
  in
  Alcotest.(check bool) "15 + 20" true
    (out.Ra_vm.Exec.result = Some (Ra_vm.Value.Vint 35))

let node_web_round_trip () =
  let src = "proc f(a: int, x: float) : float { return x + float(a); }" in
  let _, webs, built = build_of src in
  Array.iter
    (fun (w : Webs.web) ->
      let node = Build.node_of built w.Webs.w_id in
      let back = Build.web_of_node built w.Webs.cls node in
      Alcotest.(check bool) "web -> node -> rep web" true
        (Ra_support.Union_find.find built.Build.alias w.Webs.w_id = back))
    (Webs.webs webs)

(* ---- parallel build == sequential build, structurally ---- *)

(* Shared across qcheck trials: domains are never reclaimed before
   process exit, so pools must not be created per trial. *)
let pools = lazy (List.map (fun jobs -> Ra_support.Pool.create ~jobs) [ 2; 4; 8 ])

let same_graph (a : Igraph.t) (b : Igraph.t) =
  Igraph.n_nodes a = Igraph.n_nodes b
  && Igraph.n_precolored a = Igraph.n_precolored b
  && Igraph.n_edges a = Igraph.n_edges b
  && List.for_all
       (fun n -> Igraph.neighbors a n = Igraph.neighbors b n)
       (List.init (Igraph.n_nodes a) Fun.id)

let same_build (x : Build.t) (y : Build.t) =
  same_graph x.Build.int_graph y.Build.int_graph
  && same_graph x.Build.flt_graph y.Build.flt_graph
  && x.Build.node_of_web = y.Build.node_of_web
  && x.Build.web_of_node_int = y.Build.web_of_node_int
  && x.Build.web_of_node_flt = y.Build.web_of_node_flt
  && x.Build.moves_coalesced = y.Build.moves_coalesced

let same_outcome g_seq g_par h ~k =
  let costs g = Array.make (Igraph.n_nodes g) 1.0 in
  Heuristic.run h g_seq ~k ~costs:(costs g_seq)
  = Heuristic.run h g_par ~k ~costs:(costs g_par)

let prop_parallel_build_identical =
  (* The tentpole property: sharding the block scan over worker domains
     and replaying the staged edges must reproduce the sequential graph
     bit for bit — same edges, same adjacency insertion order (which
     simplify/select are sensitive to), same node numbering, same
     coalescing — and therefore identical coloring/spill decisions for
     every heuristic, with and without coalescing, at any pool width. *)
  QCheck.Test.make
    ~name:
      "parallel graph build is structurally identical to sequential \
       (jobs 2/4/8, with/without coalescing, all heuristics agree)"
    ~count:12
    QCheck.(pair (int_bound 1000000) (int_range 5 30))
    (fun (seed, size) ->
      let src = Progen.generate ~seed ~size in
      let procs = Codegen.compile_source src in
      List.for_all
        (fun (p : Proc.t) ->
          let cfg = Cfg.build p.Proc.code in
          let webs = Webs.build p cfg ~is_spill_vreg:(fun _ -> false) in
          List.for_all
            (fun coalesce ->
              let seq = Build.build Machine.rt_pc p cfg ~webs ~coalesce () in
              List.for_all
                (fun pool ->
                  let par =
                    Build.build Machine.rt_pc p cfg ~webs ~coalesce ~pool
                      ~par:(Build.par_scratch ())
                      ~touched:(Ra_support.Bitset.create 0)
                      ~verify:true ()
                  in
                  same_build seq par
                  && List.for_all
                       (fun h ->
                         same_outcome seq.Build.int_graph par.Build.int_graph
                           h
                           ~k:(Machine.regs Machine.rt_pc Reg.Int_reg)
                         && same_outcome seq.Build.flt_graph
                              par.Build.flt_graph h
                              ~k:(Machine.regs Machine.rt_pc Reg.Flt_reg))
                       [ Heuristic.Chaitin; Heuristic.Briggs;
                         Heuristic.Matula ])
                (Lazy.force pools))
            [ true; false ])
        procs)

(* ---- block chunking ---- *)

let chunk_starts_clamped_to_blocks () =
  (* a 1-block CFG handed to a wide pool must degrade to one chunk, not
     produce empty chunks or out-of-range starts (compiled procedures
     always end in a separate return block, so build the straight-line
     procedure by hand) *)
  let a = Reg.int 0 and b = Reg.int 1 in
  let p = Proc.create ~name:"f" ~args:[ a; b ] ~ret_cls:(Some Reg.Int_reg) in
  let t = Proc.fresh_reg p Reg.Int_reg in
  p.Proc.code <-
    [| { Proc.ins = Instr.Binop (Instr.Imul, t, a, b); depth = 0 };
       { Proc.ins = Instr.Binop (Instr.Iadd, t, t, a); depth = 0 };
       { Proc.ins = Instr.Ret (Some t); depth = 0 } |];
  let cfg = Cfg.build p.Proc.code in
  Alcotest.(check int) "single-block program" 1 (Cfg.n_blocks cfg);
  let starts = Build.chunk_starts cfg ~n_chunks:8 in
  Alcotest.(check (array int)) "one chunk" [| 0; 1 |] starts;
  (* and the parallel build over that degenerate chunking still matches
     the sequential one *)
  let webs = Webs.build p cfg ~is_spill_vreg:(fun _ -> false) in
  let seq = Build.build Machine.rt_pc p cfg ~webs () in
  let par =
    Build.build Machine.rt_pc p cfg ~webs
      ~pool:(List.nth (Lazy.force pools) 2)
      ~par:(Build.par_scratch ())
      ~touched:(Ra_support.Bitset.create 0)
      ~verify:true ()
  in
  Alcotest.(check bool) "parallel matches sequential" true (same_build seq par)

let chunk_starts_cover_every_block () =
  let src =
    {| proc f(n: int) : int {
         var s: int; var i: int;
         s = 0;
         for i = 1 to n {
           if (s > i) { s = s + i; } else { s = s - i; }
         }
         return s;
       } |}
  in
  let p = List.hd (Codegen.compile_source src) in
  let cfg = Cfg.build p.Proc.code in
  let n = Cfg.n_blocks cfg in
  List.iter
    (fun n_chunks ->
      let starts = Build.chunk_starts cfg ~n_chunks in
      let chunks = Array.length starts - 1 in
      Alcotest.(check int)
        (Printf.sprintf "clamped (%d requested)" n_chunks)
        (min n_chunks n) chunks;
      Alcotest.(check int) "starts at 0" 0 starts.(0);
      Alcotest.(check int) "ends at n_blocks" n starts.(chunks);
      for c = 0 to chunks - 1 do
        Alcotest.(check bool) "chunk non-empty" true (starts.(c) < starts.(c + 1))
      done)
    [ 1; 2; 3; n; n + 5; 64 ]

(* ---- edge cache ---- *)

let cached_rebuild_replays_all_blocks () =
  let src =
    "proc f(a: int, b: int, c: int) : int {\n\
    \  var t: int;\n\
    \  if (a > b) { t = a * c; } else { t = b - c; }\n\
    \  return t + a;\n\
     }"
  in
  let p = List.hd (Codegen.compile_source src) in
  let cfg = Cfg.build p.Proc.code in
  let webs = Webs.build p cfg ~is_spill_vreg:(fun _ -> false) in
  let n = Cfg.n_blocks cfg in
  let cache = Build.Edge_cache.create () in
  (* coalescing off pins the build to one scan round, making the hit and
     miss counts exact *)
  let plain = Build.build Machine.rt_pc p cfg ~webs ~coalesce:false () in
  let cold =
    Build.build Machine.rt_pc p cfg ~webs ~coalesce:false ~cache ~verify:true
      ()
  in
  Alcotest.(check int) "cold build rescans every block" n
    cold.Build.cache_misses;
  Alcotest.(check int) "cold build replays none" 0 cold.Build.cache_hits;
  let warm =
    Build.build Machine.rt_pc p cfg ~webs ~coalesce:false ~cache ~verify:true
      ()
  in
  Alcotest.(check int) "warm build rescans nothing" 0 warm.Build.cache_misses;
  Alcotest.(check int) "warm build replays every block" n
    warm.Build.cache_hits;
  Alcotest.(check bool) "cached graphs match uncached" true
    (same_build plain warm);
  (* invalidating one block forces exactly that block's rescan *)
  Build.Edge_cache.invalidate_blocks cache [ 0 ];
  let partial =
    Build.build Machine.rt_pc p cfg ~webs ~coalesce:false ~cache ~verify:true
      ()
  in
  Alcotest.(check int) "one miss on the invalidated block" 1
    partial.Build.cache_misses;
  Alcotest.(check int) "other blocks replayed" (n - 1)
    partial.Build.cache_hits;
  Alcotest.(check bool) "partially-cached graphs match" true
    (same_build plain partial);
  (* with coalescing the round count varies, but totals must add up and
     the verified graphs still match an uncached build *)
  Build.Edge_cache.clear cache;
  let seq = Build.build Machine.rt_pc p cfg ~webs () in
  ignore (Build.build Machine.rt_pc p cfg ~webs ~cache ~verify:true ());
  let rebuilt = Build.build Machine.rt_pc p cfg ~webs ~cache ~verify:true () in
  Alcotest.(check int) "scans account for every block every round"
    (n * rebuilt.Build.rounds)
    (rebuilt.Build.cache_hits + rebuilt.Build.cache_misses);
  Alcotest.(check bool) "first round fully cached" true
    (rebuilt.Build.cache_hits >= n);
  Alcotest.(check bool) "coalescing cached build matches" true
    (same_build seq rebuilt)

let poisoned_cache_trips_verify () =
  (* the mutation test: a stale/corrupt cache entry must not survive a
     verified build — the cross-check against the reference scan has to
     catch it *)
  let src =
    "proc f(a: int, b: int) : int {\n\
    \  var s: int; s = a;\n\
    \  if (a > b) { s = s + b; }\n\
    \  return s * a;\n\
     }"
  in
  let p = List.hd (Codegen.compile_source src) in
  let cfg = Cfg.build p.Proc.code in
  let webs = Webs.build p cfg ~is_spill_vreg:(fun _ -> false) in
  let cache = Build.Edge_cache.create () in
  ignore (Build.build Machine.rt_pc p cfg ~webs ~cache ());
  Alcotest.(check bool) "an entry was poisoned" true
    (Build.Edge_cache.poison cache);
  (match Build.build Machine.rt_pc p cfg ~webs ~cache ~verify:true () with
   | _ -> Alcotest.fail "verified build accepted a poisoned cache"
   | exception Build.Divergence _ -> ());
  (* and without the cross-check, clearing recovers a correct graph *)
  Build.Edge_cache.clear cache;
  let rebuilt = Build.build Machine.rt_pc p cfg ~webs ~cache ~verify:true () in
  let plain = Build.build Machine.rt_pc p cfg ~webs () in
  Alcotest.(check bool) "clear recovers" true (same_build plain rebuilt)

let suites =
  [ ( "build.interference",
      [ Alcotest.test_case "overlapping vars interfere" `Quick
          overlapping_vars_interfere;
        Alcotest.test_case "disjoint vars don't" `Quick
          disjoint_vars_coalesce_or_dont_interfere;
        Alcotest.test_case "call clobbers" `Quick call_clobbers_across;
        Alcotest.test_case "entry args interfere" `Quick entry_args_interfere ] );
    ( "build.coalescing",
      [ Alcotest.test_case "merges copy chain" `Quick
          coalescing_merges_copy_chain;
        Alcotest.test_case "refuses interfering" `Quick
          coalesce_refuses_interfering;
        Alcotest.test_case "node/web round trip" `Quick node_web_round_trip ] );
    ( "build.parallel",
      [ Alcotest.test_case "chunk_starts clamps to block count" `Quick
          chunk_starts_clamped_to_blocks;
        Alcotest.test_case "chunk_starts covers every block" `Quick
          chunk_starts_cover_every_block;
        QCheck_alcotest.to_alcotest prop_parallel_build_identical ] );
    ( "build.edge_cache",
      [ Alcotest.test_case "cached rebuild replays all blocks" `Quick
          cached_rebuild_replays_all_blocks;
        Alcotest.test_case "poisoned cache trips verify" `Quick
          poisoned_cache_trips_verify ] ) ]
