(* Tests for the synthetic workload generators (Ra_programs.Synth,
   Ra_core.Synth_graph) and the speculative parallel coloring engine
   (Ra_core.Par_color): fixed-seed generation is byte-stable across
   runs and pool widths, generated programs are well-formed, and the
   engine's results are bit-identical to the sequential baseline at
   every width. *)

open Ra_core

(* Hex MD5s of fixed-seed generator output, committed so a cross-run
   (or cross-machine) drift in Lcg or the generators shows up as a
   test failure, not as silently different benchmarks. *)
let program_md5 = "92aa2704ec73c88cde2ff81e879ad9f0"
let power_law_digest = "30202ab212dc77fa"
let geometric_digest = "33d687415d9e17a5"

let md5 s = Digest.to_hex (Digest.string s)

let with_pool ~jobs f =
  let pool = Ra_support.Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Ra_support.Pool.shutdown pool)
    (fun () -> f pool)

(* ---- program generator ---- *)

let program_bytes_stable () =
  let a = Ra_programs.Synth.program ~seed:7 ~size:30 in
  let b = Ra_programs.Synth.program ~seed:7 ~size:30 in
  Alcotest.(check string) "same seed, same bytes" a b;
  Alcotest.(check string) "committed digest" program_md5 (md5 a);
  (* a different seed must actually change the program *)
  Alcotest.(check bool) "seeds differ" false
    (a = Ra_programs.Synth.program ~seed:8 ~size:30)

let program_stable_across_widths () =
  let reference = Ra_programs.Synth.program ~seed:7 ~size:30 in
  with_pool ~jobs:4 (fun pool ->
    (* generate on every pool worker concurrently: the generator owns
       its rng, so width must not leak into the bytes *)
    let out = Array.make 4 "" in
    Ra_support.Pool.run pool ~n:4 (fun i ->
      out.(i) <- Ra_programs.Synth.program ~seed:7 ~size:30);
    Array.iter
      (fun s -> Alcotest.(check string) "width-independent" reference s)
      out)

let generated_programs_lint () =
  List.iter
    (fun seed ->
      let source = Ra_programs.Synth.program ~seed ~size:35 in
      let procs = Ra_ir.Codegen.compile_source source in
      List.iter
        (fun p ->
          let diags = Ra_check.Lint.run p in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d %s lints" seed p.Ra_ir.Proc.name)
            false
            (Ra_check.Diagnostic.has_errors diags))
        procs)
    [ 1; 2; 3; 4; 5 ]

let many_compiles_and_lints () =
  let source = Ra_programs.Synth.many ~seed:11 ~size:20 ~routines:3 in
  let procs = Ra_ir.Codegen.compile_source source in
  let names = List.map (fun (p : Ra_ir.Proc.t) -> p.name) procs in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " present") true
        (List.mem expected names))
    [ "helper"; "synth0"; "synth1"; "synth2"; "main" ];
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (p.Ra_ir.Proc.name ^ " lints") false
        (Ra_check.Diagnostic.has_errors (Ra_check.Lint.run p)))
    procs

(* ---- graph generators ---- *)

let make_power_law () =
  Synth_graph.power_law ~seed:42 ~n_nodes:5000 ~n_precolored:32 ~avg_degree:8

let make_geometric () =
  Synth_graph.geometric ~seed:42 ~n_nodes:5000 ~n_precolored:32 ~avg_degree:8

let graph_digests_stable () =
  Alcotest.(check string) "power-law committed digest" power_law_digest
    (Synth_graph.digest (make_power_law ()));
  Alcotest.(check string) "power-law regenerates" power_law_digest
    (Synth_graph.digest (make_power_law ()));
  Alcotest.(check string) "geometric committed digest" geometric_digest
    (Synth_graph.digest (make_geometric ()));
  Alcotest.(check string) "geometric regenerates" geometric_digest
    (Synth_graph.digest (make_geometric ()))

let graph_stable_across_widths () =
  with_pool ~jobs:4 (fun pool ->
    let out = Array.make 4 "" in
    Ra_support.Pool.run pool ~n:4 (fun i ->
      out.(i) <-
        Synth_graph.digest
          (if i mod 2 = 0 then make_power_law () else make_geometric ()));
    Array.iteri
      (fun i d ->
        Alcotest.(check string) "width-independent"
          (if i mod 2 = 0 then power_law_digest else geometric_digest)
          d)
      out)

let to_igraph_agrees () =
  let g = make_power_law () in
  let ig = Synth_graph.to_igraph g in
  Alcotest.(check int) "edge count" (Synth_graph.n_edges g)
    (Igraph.n_edges ig);
  let order = Synth_graph.natural_order g in
  let via_csr = Par_color.select_view_seq (Synth_graph.view g) ~k:8 ~order in
  let via_ig =
    Par_color.select_view_seq (Par_color.view_of_igraph ig) ~k:8 ~order
  in
  Alcotest.(check bool) "same coloring through both views" true
    (via_csr = via_ig)

(* ---- speculative engine vs sequential baseline ---- *)

let engine_identical_at_width jobs () =
  List.iter
    (fun g ->
      let view = Synth_graph.view g in
      let order = Synth_graph.natural_order g in
      List.iter
        (fun k ->
          let base = Par_color.select_view_seq view ~k ~order in
          with_pool ~jobs (fun pool ->
            let stats = ref Par_color.no_stats in
            let spec = Par_color.select_view ~pool ~stats view ~k ~order in
            Alcotest.(check bool)
              (Printf.sprintf "k=%d width=%d identical" k jobs)
              true (spec = base);
            if jobs > 1 then
              Alcotest.(check bool) "engine engaged" true
                !stats.Par_color.engaged))
        [ 4; 8; 16 ])
    [ make_power_law (); make_geometric () ]

let engine_through_heuristics () =
  (* the allocator-facing wrapper: every heuristic's outcome must be
     unchanged when select routes through the engine, spill decisions
     included — verify:true additionally cross-checks inside *)
  let rng = Ra_support.Lcg.create ~seed:5 in
  let g = Igraph.create ~n_nodes:700 ~n_precolored:0 in
  for a = 0 to 699 do
    for _ = 1 to 6 do
      let b = Ra_support.Lcg.int rng 700 in
      if b <> a then Igraph.add_edge g a b
    done
  done;
  let costs = Array.init 700 (fun i -> float_of_int (1 + (i * 7 mod 13))) in
  Par_color.set_min_nodes (Some 1);
  Fun.protect ~finally:(fun () -> Par_color.set_min_nodes None)
    (fun () ->
      with_pool ~jobs:3 (fun pool ->
        List.iter
          (fun h ->
            List.iter
              (fun k ->
                let seq = Heuristic.run h g ~k ~costs in
                let par = Heuristic.run ~pool ~verify:true h g ~k ~costs in
                Alcotest.(check bool)
                  (Printf.sprintf "%s k=%d outcome identical"
                     (Heuristic.name h) k)
                  true (seq = par))
              [ 4; 8 ])
          [ Heuristic.Chaitin; Heuristic.Briggs; Heuristic.Matula ]))

let footprint_overlap_rejected () =
  (* the engine's worker tasks declare disjoint write footprints; the
     seeded-overlap hook collapses them onto one token, and the
     dispatch-time validator must refuse the batch — proving the
     race-detection layer actually covers these tasks *)
  Ra_check.Effects.install ();
  let g = make_power_law () in
  let view = Synth_graph.view g in
  let order = Synth_graph.natural_order g in
  Par_color.seeded_footprint_overlap := true;
  Fun.protect
    ~finally:(fun () -> Par_color.seeded_footprint_overlap := false)
    (fun () ->
      with_pool ~jobs:2 (fun pool ->
        match Par_color.select_view ~pool view ~k:8 ~order with
        | _ -> Alcotest.fail "overlapping footprints dispatched"
        | exception Ra_check.Effects.Conflict _ -> ()))

let suites =
  [ ( "programs.synth",
      [ Alcotest.test_case "bytes stable" `Quick program_bytes_stable;
        Alcotest.test_case "stable across widths" `Quick
          program_stable_across_widths;
        Alcotest.test_case "generated programs lint" `Quick
          generated_programs_lint;
        Alcotest.test_case "many compiles and lints" `Quick
          many_compiles_and_lints ] );
    ( "core.synth_graph",
      [ Alcotest.test_case "digests stable" `Quick graph_digests_stable;
        Alcotest.test_case "stable across widths" `Quick
          graph_stable_across_widths;
        Alcotest.test_case "to_igraph agrees" `Quick to_igraph_agrees ] );
    ( "core.par_color",
      [ Alcotest.test_case "identical at width 1" `Quick
          (engine_identical_at_width 1);
        Alcotest.test_case "identical at width 2" `Quick
          (engine_identical_at_width 2);
        Alcotest.test_case "identical at width 4" `Quick
          (engine_identical_at_width 4);
        Alcotest.test_case "identical at width 8" `Quick
          (engine_identical_at_width 8);
        Alcotest.test_case "heuristic outcomes unchanged" `Quick
          engine_through_heuristics;
        Alcotest.test_case "footprint overlap rejected" `Quick
          footprint_overlap_rejected ] ) ]
