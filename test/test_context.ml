(* Tests for the persistent allocation context (Ra_core.Context): the
   incremental pipeline — patched CFG, rebuilt webs, worklist-updated
   liveness, replayed interference graphs — must be observably identical
   to building everything from scratch on every pass, for every
   heuristic and ablation. *)

open Ra_ir
open Ra_core

let qtest = QCheck_alcotest.to_alcotest

let machine_k ?(flt = 8) k =
  { (Machine.with_int_regs Machine.rt_pc k) with Machine.flt_regs = flt }

let compile src =
  let procs = Codegen.compile_source src in
  Ra_opt.Opt.optimize_all procs;
  procs

let heuristics = [ Heuristic.Chaitin; Heuristic.Briggs; Heuristic.Matula ]

(* Everything observable about an allocation except CPU time. *)
let strip_times (p : Allocator.pass_record) =
  ( p.Allocator.pass_index,
    p.Allocator.webs_initial,
    p.Allocator.webs_coalesced,
    p.Allocator.nodes_int,
    p.Allocator.nodes_flt,
    p.Allocator.edges_int,
    p.Allocator.edges_flt,
    p.Allocator.spilled,
    p.Allocator.spill_cost )

let fingerprint (r : Allocator.result) =
  ( List.map strip_times r.Allocator.passes,
    r.Allocator.live_ranges,
    r.Allocator.total_spilled,
    r.Allocator.total_spill_cost,
    r.Allocator.moves_removed,
    Proc.to_string r.Allocator.proc )

(* few registers + a loop => several spill passes, the case the
   incremental path exists for *)
let spilling_src =
  {| proc f(a: int, b: int) : int {
       var s: int; var i: int;
       s = 0;
       for i = 1 to a {
         s = s + i * b;
       }
       return s;
     } |}

let multi_proc_src =
  {| proc add(a: float, b: float) : float { return a + b; }
     proc g(n: int) : int {
       var i: int; var s: int;
       s = 0;
       for i = 1 to n { s = s + i; }
       return s;
     }
     proc f(n: int) : float {
       var i: int; var s: float;
       s = 0.0;
       for i = 1 to n {
         s = add(s, float(i));
       }
       return s;
     } |}

let incremental_equals_scratch () =
  let machine = machine_k 3 in
  let p = List.hd (compile spilling_src) in
  List.iter
    (fun h ->
      let inc_ctx = Context.create ~incremental:true machine in
      let scr_ctx = Context.create ~incremental:false machine in
      List.iter
        (fun (coalesce, rematerialize) ->
          let alloc ctx =
            fingerprint
              (Allocator.allocate ~coalesce ~rematerialize ~context:ctx
                 machine h p)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s coalesce=%b remat=%b" (Heuristic.name h)
               coalesce rematerialize)
            true
            (alloc inc_ctx = alloc scr_ctx))
        [ (true, true); (true, false); (false, true); (false, false) ];
      (* the comparison is only meaningful if the incremental path ran *)
      Alcotest.(check bool)
        (Printf.sprintf "%s exercised the incremental path" (Heuristic.name h))
        true
        ((Context.stats inc_ctx).Context.incremental_builds > 0);
      Alcotest.(check int)
        (Printf.sprintf "%s scratch context never patched" (Heuristic.name h))
        0
        (Context.stats scr_ctx).Context.incremental_builds)
    heuristics

let warm_context_across_procedures () =
  (* one context reused across a whole program (the batch-driver usage)
     gives the same result per procedure as a cold context each time *)
  let machine = machine_k 4 in
  let procs = compile multi_proc_src in
  let warm = Context.create machine in
  List.iter
    (fun (p : Proc.t) ->
      let with_warm =
        fingerprint (Allocator.allocate ~context:warm machine Heuristic.Briggs p)
      in
      let with_cold =
        fingerprint
          (Allocator.allocate
             ~context:(Context.create machine)
             machine Heuristic.Briggs p)
      in
      Alcotest.(check bool) p.Proc.name true (with_warm = with_cold))
    procs

let verify_mode_cross_checks () =
  (* verify:true makes every incremental build race a from-scratch
     reference build; any structural difference raises Divergence *)
  let machine = machine_k 3 in
  let p = List.hd (compile spilling_src) in
  let ctx = Context.create ~incremental:true ~verify:true machine in
  let r = Allocator.allocate ~verify:false ~context:ctx machine Heuristic.Briggs p in
  Alcotest.(check bool) "spilled (multi-pass workload)" true
    (r.Allocator.total_spilled > 0);
  let stats = Context.stats ctx in
  Alcotest.(check bool) "incremental builds happened" true
    (stats.Context.incremental_builds > 0);
  Alcotest.(check int) "every incremental build was cross-checked"
    stats.Context.incremental_builds stats.Context.verified_builds

let escape_hatch_disables_patching () =
  let machine = machine_k 3 in
  let p = List.hd (compile spilling_src) in
  let ctx = Context.create ~incremental:false machine in
  let r = Allocator.allocate ~context:ctx machine Heuristic.Briggs p in
  let stats = Context.stats ctx in
  Alcotest.(check int) "no patched builds" 0 stats.Context.incremental_builds;
  Alcotest.(check bool) "every pass built from scratch" true
    (stats.Context.scratch_builds >= List.length r.Allocator.passes)

let prop_incremental_equals_scratch =
  (* The satellite property: for random programs, every heuristic, with
     and without coalescing, allocation through an incremental context
     is indistinguishable (pass counters, totals, final code) from one
     that rebuilds the world each pass. Small k forces the multi-pass
     spilling that the incremental path actually serves. *)
  QCheck.Test.make
    ~name:
      "incremental context reproduces from-scratch allocation exactly \
       (all heuristics, with/without coalescing)"
    ~count:15
    QCheck.(triple (int_bound 1000000) (int_range 5 30) (int_range 3 10))
    (fun (seed, size, k) ->
      let k = max 3 k and size = max 1 size in
      let src = Progen.generate ~seed ~size in
      let procs = compile src in
      let machine = machine_k ~flt:4 k in
      List.for_all
        (fun h ->
          (* cost-blind Matula may legitimately fail to converge; both
             modes must then fail on the same pass *)
          let max_passes = if h = Heuristic.Matula then 6 else 32 in
          let inc_ctx = Context.create ~incremental:true machine in
          let scr_ctx = Context.create ~incremental:false machine in
          List.for_all
            (fun coalesce ->
              List.for_all
                (fun p ->
                  let alloc ctx =
                    match
                      Allocator.allocate ~coalesce ~max_passes ~context:ctx
                        machine h p
                    with
                    | r -> Some (fingerprint r)
                    | exception Allocator.Allocation_failure _ -> None
                  in
                  alloc inc_ctx = alloc scr_ctx)
                procs)
            [ true; false ])
        heuristics)

let prop_parallel_equals_sequential =
  (* Pool-backed contexts must be a pure performance knob: allocation
     through a context whose graph builds run on a domain pool (and
     whose spill passes therefore replay staged parallel edges) is
     observably identical to a jobs=1 context, for every heuristic and
     pool width, with and without coalescing. *)
  let pools =
    (* shared across trials — domains are only reclaimed at process
       exit, so per-trial pools would exhaust the domain limit *)
    lazy (List.map (fun jobs -> Ra_support.Pool.create ~jobs) [ 2; 4; 8 ])
  in
  QCheck.Test.make
    ~name:
      "pool-backed context reproduces sequential allocation exactly \
       (all heuristics, jobs 2/4/8, with/without coalescing)"
    ~count:8
    QCheck.(triple (int_bound 1000000) (int_range 5 30) (int_range 3 10))
    (fun (seed, size, k) ->
      let k = max 3 k and size = max 1 size in
      let src = Progen.generate ~seed ~size in
      let procs = compile src in
      let machine = machine_k ~flt:4 k in
      List.for_all
        (fun h ->
          let max_passes = if h = Heuristic.Matula then 6 else 32 in
          let seq_ctx = Context.create ~jobs:1 machine in
          List.for_all
            (fun pool ->
              let par_ctx = Context.create ~pool machine in
              List.for_all
                (fun coalesce ->
                  List.for_all
                    (fun p ->
                      let alloc ctx =
                        match
                          Allocator.allocate ~coalesce ~max_passes
                            ~context:ctx machine h p
                        with
                        | r -> Some (fingerprint r)
                        | exception Allocator.Allocation_failure _ -> None
                      in
                      alloc seq_ctx = alloc par_ctx)
                    procs)
                [ true; false ])
            (Lazy.force pools))
        heuristics)

let edge_cache_reused_across_passes () =
  (* a multi-pass spilling allocation through a cache-backed context must
     replay clean blocks from the cache on every pass after the first —
     and still reproduce the uncached result exactly *)
  let machine = machine_k 3 in
  let p = List.hd (compile spilling_src) in
  let cac_ctx = Context.create ~incremental:true ~edge_cache:true machine in
  let scr_ctx = Context.create ~incremental:false ~edge_cache:false machine in
  Alcotest.(check bool) "cache-backed context reports enabled" true
    (Context.edge_cache_enabled cac_ctx);
  Alcotest.(check bool) "uncached context reports disabled" false
    (Context.edge_cache_enabled scr_ctx);
  let cac = Allocator.allocate ~context:cac_ctx machine Heuristic.Briggs p in
  let scr = Allocator.allocate ~context:scr_ctx machine Heuristic.Briggs p in
  Alcotest.(check bool) "multi-pass program" true
    (List.length cac.Allocator.passes >= 2);
  Alcotest.(check bool) "identical to uncached" true
    (fingerprint cac = fingerprint scr);
  List.iteri
    (fun i (pr : Allocator.pass_record) ->
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "pass %d replays some blocks from the cache" (i + 1))
          true
          (pr.Allocator.cache_hits > 0))
    cac.Allocator.passes;
  List.iter
    (fun (pr : Allocator.pass_record) ->
      Alcotest.(check int)
        "uncached passes never touch a cache" 0
        (pr.Allocator.cache_hits + pr.Allocator.cache_misses))
    scr.Allocator.passes

let prop_edge_cache_equals_scratch =
  (* The tentpole property: for random programs — hence random
     coalescing-round and spill-pass sequences — allocation through a
     cache-backed context (sequential and pool-backed) is
     indistinguishable from a from-scratch context, for every heuristic,
     with and without coalescing. Small k forces the multi-pass spilling
     that exercises the cross-pass remap; [verify] additionally
     cross-checks every cached round in-flight against a reference
     rescan, so a silent cache corruption fails the trial even where the
     end state happens to agree. *)
  let pool = lazy (Ra_support.Pool.create ~jobs:4) in
  QCheck.Test.make
    ~name:
      "edge-cache-backed context reproduces from-scratch allocation \
       exactly (all heuristics, jobs 1/4, with/without coalescing)"
    ~count:12
    QCheck.(triple (int_bound 1000000) (int_range 5 30) (int_range 3 10))
    (fun (seed, size, k) ->
      let k = max 3 k and size = max 1 size in
      let src = Progen.generate ~seed ~size in
      let procs = compile src in
      let machine = machine_k ~flt:4 k in
      List.for_all
        (fun h ->
          let max_passes = if h = Heuristic.Matula then 6 else 32 in
          let scr_ctx =
            Context.create ~incremental:false ~edge_cache:false machine
          in
          let cac_ctx =
            Context.create ~incremental:true ~edge_cache:true ~verify:true
              machine
          in
          let par_ctx =
            Context.create ~incremental:true ~edge_cache:true ~verify:true
              ~pool:(Lazy.force pool) machine
          in
          List.for_all
            (fun coalesce ->
              List.for_all
                (fun p ->
                  let alloc ctx =
                    match
                      Allocator.allocate ~coalesce ~max_passes ~context:ctx
                        machine h p
                    with
                    | r -> Some (fingerprint r)
                    | exception Allocator.Allocation_failure _ -> None
                  in
                  let reference = alloc scr_ctx in
                  alloc cac_ctx = reference && alloc par_ctx = reference)
                procs)
            [ true; false ])
        heuristics)

let suites =
  [ ( "core.context",
      [ Alcotest.test_case "incremental equals scratch" `Quick
          incremental_equals_scratch;
        Alcotest.test_case "warm context across procedures" `Quick
          warm_context_across_procedures;
        Alcotest.test_case "verify mode cross-checks" `Quick
          verify_mode_cross_checks;
        Alcotest.test_case "escape hatch disables patching" `Quick
          escape_hatch_disables_patching;
        Alcotest.test_case "edge cache reused across passes" `Quick
          edge_cache_reused_across_passes;
        qtest prop_incremental_equals_scratch;
        qtest prop_parallel_equals_sequential;
        qtest prop_edge_cache_equals_scratch ] ) ]
