(* The random-program generator now lives in the library proper
   ({!Ra_programs.Synth}) so the bench harness and the [rralloc synth]
   CLI can share it; this alias keeps the test suite's historical
   entry point. *)

let generate = Ra_programs.Synth.program
