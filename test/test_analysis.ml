(* Tests for the dataflow analyses: liveness, reaching definitions,
   dominators, natural loops, and web construction. *)

open Ra_ir
open Ra_analysis

let qtest = QCheck_alcotest.to_alcotest

let node ins = { Proc.ins; depth = 0 }

let mk_proc ?(args = []) code =
  let p = Proc.create ~name:"t" ~args ~ret_cls:None in
  (* counters must cover the registers mentioned *)
  p.Proc.code <- Array.of_list (List.map node code);
  p.Proc.next_int <- Proc.max_reg_id p Reg.Int_reg;
  p.Proc.next_flt <- Proc.max_reg_id p Reg.Flt_reg;
  p

(* ---- liveness ---- *)

let liveness_straight_line () =
  let i0 = Reg.int 0 and i1 = Reg.int 1 and i2 = Reg.int 2 in
  let p =
    mk_proc
      [ Instr.Li (i0, 1);
        Instr.Li (i1, 2);
        Instr.Binop (Instr.Iadd, i2, i0, i1);
        Instr.Ret (Some i2) ]
  in
  let cfg = Cfg.build p.Proc.code in
  let live = Liveness.compute ~code:p.Proc.code ~cfg (Liveness.vreg_numbering p) in
  let after i = Ra_support.Bitset.elements (Liveness.live_after live i) in
  Alcotest.(check (list int)) "after li i0" [ 0 ] (after 0);
  Alcotest.(check (list int)) "after li i1" [ 0; 1 ] (after 1);
  Alcotest.(check (list int)) "after add" [ 2 ] (after 2);
  Alcotest.(check (list int)) "after ret" [] (after 3)

let liveness_branch () =
  (* i1 is live across the branch only on the path that uses it *)
  let i0 = Reg.int 0 and i1 = Reg.int 1 in
  let p =
    mk_proc
      [ Instr.Li (i0, 1); (* 0 *)
        Instr.Li (i1, 2); (* 1 *)
        Instr.Cbr (Instr.Lt, i0, i0, 0, 1); (* 2 *)
        Instr.Label 0; (* 3 *)
        Instr.Ret (Some i1); (* 4 *)
        Instr.Label 1; (* 5 *)
        Instr.Ret (Some i0) (* 6 *) ]
  in
  let cfg = Cfg.build p.Proc.code in
  let live = Liveness.compute ~code:p.Proc.code ~cfg (Liveness.vreg_numbering p) in
  Alcotest.(check (list int)) "both live into branch" [ 0; 1 ]
    (Ra_support.Bitset.elements (Liveness.live_after live 1))

let liveness_loop () =
  (* a value used after a loop stays live through it *)
  let i0 = Reg.int 0 and i1 = Reg.int 1 in
  let p =
    mk_proc
      [ Instr.Li (i0, 1); (* 0 *)
        Instr.Li (i1, 10); (* 1 *)
        Instr.Label 0; (* 2 *)
        Instr.Binop (Instr.Isub, i1, i1, i1); (* 3: churn i1 *)
        Instr.Cbr (Instr.Lt, i1, i1, 0, 1); (* 4 *)
        Instr.Label 1; (* 5 *)
        Instr.Ret (Some i0) (* 6 *) ]
  in
  let cfg = Cfg.build p.Proc.code in
  let live = Liveness.compute ~code:p.Proc.code ~cfg (Liveness.vreg_numbering p) in
  Alcotest.(check bool) "i0 live through the loop" true
    (Ra_support.Bitset.mem (Liveness.live_after live 3) 0)

(* naive reference implementation: per-instruction CFG backward fixpoint *)
let naive_liveness (p : Proc.t) =
  let code = p.Proc.code in
  let n = Array.length code in
  let index = Liveness.vreg_index p in
  let universe = p.Proc.next_int + p.Proc.next_flt in
  let label_at = Hashtbl.create 8 in
  Array.iteri
    (fun i (nd : Proc.node) ->
      match nd.Proc.ins with
      | Instr.Label l -> Hashtbl.replace label_at l i
      | _ -> ())
    code;
  let succs i =
    match (code.(i)).Proc.ins with
    | Instr.Ret _ -> []
    | Instr.Br l -> [ Hashtbl.find label_at l ]
    | Instr.Cbr (_, _, _, a, b) ->
      [ Hashtbl.find label_at a; Hashtbl.find label_at b ]
    | _ -> if i + 1 < n then [ i + 1 ] else []
  in
  let live_in = Array.init n (fun _ -> Ra_support.Bitset.create universe) in
  let live_out = Array.init n (fun _ -> Ra_support.Bitset.create universe) in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      List.iter
        (fun s ->
          if Ra_support.Bitset.union_into ~into:live_out.(i) live_in.(s) then
            changed := true)
        (succs i);
      let scratch = Ra_support.Bitset.copy live_out.(i) in
      List.iter
        (fun d -> Ra_support.Bitset.remove scratch (index d))
        (Instr.defs (code.(i)).Proc.ins);
      List.iter
        (fun u -> Ra_support.Bitset.add scratch (index u))
        (Instr.uses (code.(i)).Proc.ins);
      if Ra_support.Bitset.assign ~into:live_in.(i) scratch then changed := true
    done
  done;
  live_out

let prop_liveness_matches_naive =
  QCheck.Test.make ~name:"liveness agrees with a naive per-instruction solver"
    ~count:40
    QCheck.(pair (int_bound 100000) (int_range 5 25))
    (fun (seed, size) ->
      let src = Progen.generate ~seed ~size in
      let procs = Codegen.compile_source src in
      List.for_all
        (fun (p : Proc.t) ->
          let cfg = Cfg.build p.Proc.code in
          let live =
            Liveness.compute ~code:p.Proc.code ~cfg (Liveness.vreg_numbering p)
          in
          let reference = naive_liveness p in
          let ok = ref true in
          Array.iteri
            (fun i (_ : Proc.node) ->
              if not (Ra_support.Bitset.equal (Liveness.live_after live i) reference.(i))
              then ok := false)
            p.Proc.code;
          !ok)
        procs)

(* ---- incremental liveness (Liveness.update) ---- *)

(* Compare a patched solution against a from-scratch [compute] on the
   edited code, block by block, and return it for further probing. *)
let check_update_matches_compute ~msg ~old_live (p : Proc.t) ~remap
    ~dirty_blocks =
  let cfg = Cfg.build p.Proc.code in
  let numbering = Liveness.vreg_numbering p in
  let fresh = Liveness.compute ~code:p.Proc.code ~cfg numbering in
  let updated =
    Liveness.update ~old:old_live ~code:p.Proc.code ~cfg numbering ~remap
      ~dirty_blocks
  in
  for b = 0 to Cfg.n_blocks cfg - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "%s: live-in of block %d" msg b)
      true
      (Ra_support.Bitset.equal
         (Liveness.block_live_in updated b)
         (Liveness.block_live_in fresh b));
    Alcotest.(check bool)
      (Printf.sprintf "%s: live-out of block %d" msg b)
      true
      (Ra_support.Bitset.equal
         (Liveness.block_live_out updated b)
         (Liveness.block_live_out fresh b))
  done;
  updated

let update_propagates_to_clean_blocks () =
  (* Inserting a use of a previously dead value into one block must make
     it live in CLEAN predecessor blocks too: the worklist seeded with
     the dirty block has to run the change uphill. *)
  let i0 = Reg.int 0 and i1 = Reg.int 1 in
  let old_p =
    mk_proc
      [ Instr.Li (i0, 1); (* 0  block 0: i0 dead after this *)
        Instr.Li (i1, 2); (* 1 *)
        Instr.Cbr (Instr.Lt, i1, i1, 0, 1); (* 2 *)
        Instr.Label 0; (* 3  block 1 *)
        Instr.Ret (Some i1); (* 4 *)
        Instr.Label 1; (* 5  block 2 *)
        Instr.Ret (Some i1) (* 6 *) ]
  in
  let old_cfg = Cfg.build old_p.Proc.code in
  let old_live =
    Liveness.compute ~code:old_p.Proc.code ~cfg:old_cfg
      (Liveness.vreg_numbering old_p)
  in
  Alcotest.(check bool) "i0 dead across the branch before the edit" false
    (Ra_support.Bitset.mem (Liveness.block_live_out old_live 0) 0);
  (* the edit widens block 1 with a use of i0; blocks 0 and 2 untouched *)
  let new_p =
    mk_proc
      [ Instr.Li (i0, 1);
        Instr.Li (i1, 2);
        Instr.Cbr (Instr.Lt, i1, i1, 0, 1);
        Instr.Label 0;
        Instr.Binop (Instr.Iadd, i1, i1, i0); (* inserted *)
        Instr.Ret (Some i1);
        Instr.Label 1;
        Instr.Ret (Some i1) ]
  in
  let updated =
    check_update_matches_compute ~msg:"insertion" ~old_live new_p
      ~remap:(fun i -> i) ~dirty_blocks:[ 1 ]
  in
  Alcotest.(check bool) "i0 now live out of the clean entry block" true
    (Ra_support.Bitset.mem (Liveness.block_live_out updated 0) 0)

let update_retires_ids_everywhere () =
  (* A spilled web's id is remapped to -1; its bits must vanish from the
     carried-over facts of clean blocks, not just the dirty ones. *)
  let i0 = Reg.int 0 and i1 = Reg.int 1 in
  let i2 = Reg.int 2 and i3 = Reg.int 3 in
  let old_p =
    mk_proc
      [ Instr.Li (i0, 1); (* 0  block 0 *)
        Instr.Li (i1, 5); (* 1 *)
        Instr.Br 0; (* 2 *)
        Instr.Label 0; (* 3  block 1: i1 live straight through *)
        Instr.Binop (Instr.Iadd, i0, i0, i0); (* 4 *)
        Instr.Br 1; (* 5 *)
        Instr.Label 1; (* 6  block 2 *)
        Instr.Binop (Instr.Iadd, i0, i0, i1); (* 7 *)
        Instr.Ret (Some i0) (* 8 *) ]
  in
  let old_cfg = Cfg.build old_p.Proc.code in
  let old_live =
    Liveness.compute ~code:old_p.Proc.code ~cfg:old_cfg
      (Liveness.vreg_numbering old_p)
  in
  Alcotest.(check bool) "i1 live through the middle block before" true
    (Ra_support.Bitset.mem (Liveness.block_live_in old_live 1) 1);
  (* the edit retires i1 the way spilling does: its def site becomes a
     temp (i2), its use site a reload temp (i3); block 1 is untouched *)
  let new_p =
    mk_proc
      [ Instr.Li (i0, 1);
        Instr.Li (i2, 5); (* was the def of i1 *)
        Instr.Br 0;
        Instr.Label 0;
        Instr.Binop (Instr.Iadd, i0, i0, i0);
        Instr.Br 1;
        Instr.Label 1;
        Instr.Li (i3, 5); (* the reload *)
        Instr.Binop (Instr.Iadd, i0, i0, i3);
        Instr.Ret (Some i0) ]
  in
  let remap i = if i = 1 then -1 else i in
  let updated =
    check_update_matches_compute ~msg:"retirement" ~old_live new_p ~remap
      ~dirty_blocks:[ 0; 2 ]
  in
  let n_blocks = 3 in
  for b = 0 to n_blocks - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "retired id absent from live-in of block %d" b)
      false
      (Ra_support.Bitset.mem (Liveness.block_live_in updated b) 1);
    Alcotest.(check bool)
      (Printf.sprintf "retired id absent from live-out of block %d" b)
      false
      (Ra_support.Bitset.mem (Liveness.block_live_out updated b) 1)
  done

let update_noop_is_identity () =
  let i0 = Reg.int 0 and i1 = Reg.int 1 in
  let p =
    mk_proc
      [ Instr.Li (i0, 1);
        Instr.Li (i1, 10);
        Instr.Label 0;
        Instr.Binop (Instr.Isub, i1, i1, i1);
        Instr.Cbr (Instr.Lt, i1, i1, 0, 1);
        Instr.Label 1;
        Instr.Ret (Some i0) ]
  in
  let cfg = Cfg.build p.Proc.code in
  let old_live =
    Liveness.compute ~code:p.Proc.code ~cfg (Liveness.vreg_numbering p)
  in
  ignore
    (check_update_matches_compute ~msg:"noop" ~old_live p ~remap:(fun i -> i)
       ~dirty_blocks:[])

let prop_update_extremes_match_compute =
  (* Two degenerate edits bound the incremental solver on arbitrary
     programs: nothing dirty (pure carry-over) and everything dirty
     (full recomputation through the update path). Both must land on the
     least fixpoint [compute] reaches. *)
  QCheck.Test.make
    ~name:"liveness update with no dirt / all dirty reproduces compute"
    ~count:25
    QCheck.(pair (int_bound 100000) (int_range 5 25))
    (fun (seed, size) ->
      let src = Progen.generate ~seed ~size in
      let procs = Codegen.compile_source src in
      List.for_all
        (fun (p : Proc.t) ->
          let cfg = Cfg.build p.Proc.code in
          let numbering = Liveness.vreg_numbering p in
          let live = Liveness.compute ~code:p.Proc.code ~cfg numbering in
          let n = Cfg.n_blocks cfg in
          let same a b =
            let ok = ref true in
            for blk = 0 to n - 1 do
              if
                not
                  (Ra_support.Bitset.equal
                     (Liveness.block_live_in a blk)
                     (Liveness.block_live_in b blk)
                  && Ra_support.Bitset.equal
                       (Liveness.block_live_out a blk)
                       (Liveness.block_live_out b blk))
              then ok := false
            done;
            !ok
          in
          let update dirty_blocks =
            Liveness.update ~old:live ~code:p.Proc.code ~cfg numbering
              ~remap:(fun i -> i) ~dirty_blocks
          in
          same (update []) live
          && same (update (List.init n (fun b -> b))) live)
        procs)

(* ---- dominators ---- *)

let naive_dominators (cfg : Cfg.t) =
  (* dom(b) = {b} ∪ ∩ dom(preds) via fixpoint over all-blocks sets *)
  let n = Cfg.n_blocks cfg in
  let reachable = Array.make n false in
  let rec mark b =
    if not reachable.(b) then begin
      reachable.(b) <- true;
      List.iter mark cfg.Cfg.blocks.(b).Cfg.succs
    end
  in
  mark 0;
  let dom = Array.init n (fun _ -> Array.make n true) in
  Array.iteri (fun i d -> if i = 0 then Array.iteri (fun j _ -> d.(j) <- j = 0) d) dom;
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 1 to n - 1 do
      if reachable.(b) then begin
        let inter = Array.make n true in
        let preds =
          List.filter (fun p -> reachable.(p)) cfg.Cfg.blocks.(b).Cfg.preds
        in
        List.iter
          (fun p ->
            for j = 0 to n - 1 do
              if not dom.(p).(j) then inter.(j) <- false
            done)
          preds;
        if preds = [] then Array.fill inter 0 n false;
        inter.(b) <- true;
        if inter <> dom.(b) then begin
          dom.(b) <- inter;
          changed := true
        end
      end
    done
  done;
  fun ~dominator ~node ->
    reachable.(node) && reachable.(dominator) && dom.(node).(dominator)

let prop_dominators_match_naive =
  QCheck.Test.make ~name:"CHK dominators agree with the set-based fixpoint"
    ~count:40
    QCheck.(pair (int_bound 100000) (int_range 5 25))
    (fun (seed, size) ->
      let src = Progen.generate ~seed ~size in
      let procs = Codegen.compile_source src in
      List.for_all
        (fun (p : Proc.t) ->
          let cfg = Cfg.build p.Proc.code in
          let doms = Dominators.compute cfg in
          let reference = naive_dominators cfg in
          let n = Cfg.n_blocks cfg in
          let ok = ref true in
          for a = 0 to n - 1 do
            for b = 0 to n - 1 do
              let fast = Dominators.dominates doms ~dom:a ~node:b in
              let slow = reference ~dominator:a ~node:b in
              if fast <> slow then ok := false
            done
          done;
          !ok)
        procs)

let dominators_diamond () =
  let i0 = Reg.int 0 in
  let p =
    mk_proc
      [ Instr.Cbr (Instr.Lt, i0, i0, 0, 1);
        Instr.Label 0;
        Instr.Br 2;
        Instr.Label 1;
        Instr.Br 2;
        Instr.Label 2;
        Instr.Ret None ]
  in
  let cfg = Cfg.build p.Proc.code in
  let doms = Dominators.compute cfg in
  Alcotest.(check bool) "entry dominates join" true
    (Dominators.dominates doms ~dom:0 ~node:3);
  Alcotest.(check bool) "arm does not dominate join" false
    (Dominators.dominates doms ~dom:1 ~node:3);
  Alcotest.(check bool) "idom of join is entry" true
    (Dominators.idom doms 3 = Some 0)

(* ---- loops ---- *)

let loops_nesting_agrees_with_codegen () =
  (* the loop analysis must assign each instruction the same depth the
     code generator recorded syntactically *)
  let src =
    {| proc f(n: int) {
         var i: int; var j: int; var k: int; var s: int;
         s = 0;
         for i = 1 to n {
           s = s + 1;
           for j = 1 to n {
             s = s + 2;
           }
         }
         for k = 1 to n { s = s * 2; }
       } |}
  in
  let p = List.hd (Codegen.compile_source src) in
  let cfg = Cfg.build p.Proc.code in
  let doms = Dominators.compute cfg in
  let loops = Loops.compute cfg doms in
  Alcotest.(check int) "three natural loops" 3
    (List.length (Loops.loops loops));
  Array.iteri
    (fun i (nd : Proc.node) ->
      (* the instructions codegen placed at syntactic depth d sit in
         blocks of loop-nesting depth d, except loop-exit labels *)
      match nd.Proc.ins with
      | Instr.Label _ -> ()
      | _ ->
        Alcotest.(check int)
          (Printf.sprintf "depth at %d" i)
          nd.Proc.depth
          (Loops.instr_depth loops ~cfg i))
    p.Proc.code

let prop_loop_depth_matches_syntactic =
  QCheck.Test.make
    ~name:"natural-loop depth equals codegen's syntactic depth" ~count:40
    QCheck.(pair (int_bound 100000) (int_range 5 25))
    (fun (seed, size) ->
      let src = Progen.generate ~seed ~size in
      let procs = Codegen.compile_source src in
      List.for_all
        (fun (p : Proc.t) ->
          let cfg = Cfg.build p.Proc.code in
          let doms = Dominators.compute cfg in
          let loops = Loops.compute cfg doms in
          let ok = ref true in
          Array.iteri
            (fun i (nd : Proc.node) ->
              match nd.Proc.ins with
              | Instr.Label _ -> ()
              | _ ->
                if nd.Proc.depth <> Loops.instr_depth loops ~cfg i then
                  ok := false)
            p.Proc.code;
          !ok)
        procs)

(* ---- webs ---- *)

let webs_split_disjoint_lifetimes () =
  (* one variable reused for two unrelated purposes becomes two webs *)
  let src =
    {| proc f(n: int) : int {
         var t: int;
         t = n + 1;
         print_int(t);
         t = n * 2;
         return t;
       } |}
  in
  let p = List.hd (Codegen.compile_source src) in
  let cfg = Cfg.build p.Proc.code in
  let webs = Webs.build p cfg ~is_spill_vreg:(fun _ -> false) in
  (* find the variable: the register moved-to twice *)
  let mov_targets = Hashtbl.create 4 in
  Array.iteri
    (fun i (nd : Proc.node) ->
      match nd.Proc.ins with
      | Instr.Mov (d, _) ->
        Hashtbl.replace mov_targets d.Reg.id
          (i :: (Option.value ~default:[] (Hashtbl.find_opt mov_targets d.Reg.id)))
      | _ -> ())
    p.Proc.code;
  let t_reg, defs =
    Hashtbl.fold
      (fun id defs acc ->
        if List.length defs >= 2 then Some (id, defs) else acc)
      mov_targets None
    |> Option.get
  in
  (match defs with
   | [ d2; d1 ] ->
     let w1 = Webs.def_web webs d1 (Reg.int t_reg) in
     let w2 = Webs.def_web webs d2 (Reg.int t_reg) in
     Alcotest.(check bool) "two defs, two webs" true (w1 <> w2)
   | _ -> Alcotest.fail "expected two defs")

let webs_join_at_merge () =
  (* a variable assigned on both branches and used after the join is one
     web: both defs reach the use *)
  let src =
    {| proc f(n: int) : int {
         var t: int;
         if (n > 0) { t = 1; } else { t = 2; }
         return t;
       } |}
  in
  let p = List.hd (Codegen.compile_source src) in
  let cfg = Cfg.build p.Proc.code in
  let webs = Webs.build p cfg ~is_spill_vreg:(fun _ -> false) in
  let def_webs = ref [] in
  Array.iteri
    (fun i (nd : Proc.node) ->
      match nd.Proc.ins with
      | Instr.Mov (d, _) -> def_webs := Webs.def_web webs i d :: !def_webs
      | _ -> ())
    p.Proc.code;
  (match List.sort_uniq compare !def_webs with
   | [ _ ] -> ()
   | ws -> Alcotest.failf "expected one web for t, got %d" (List.length ws))

let webs_args_have_entry_defs () =
  let src = "proc f(a: int, x: float) : float { return x + float(a); }" in
  let p = List.hd (Codegen.compile_source src) in
  let cfg = Cfg.build p.Proc.code in
  let webs = Webs.build p cfg ~is_spill_vreg:(fun _ -> false) in
  let entry = Webs.entry_webs webs in
  Alcotest.(check int) "two argument webs" 2 (List.length entry);
  List.iter
    (fun w ->
      let web = Webs.web webs w in
      Alcotest.(check bool) "argument web has no def site" true
        (web.Webs.def_sites = []))
    entry

let webs_spill_temp_flag () =
  let src = "proc f(a: int) : int { return a + 1; }" in
  let p = List.hd (Codegen.compile_source src) in
  let cfg = Cfg.build p.Proc.code in
  let webs =
    Webs.build p cfg ~is_spill_vreg:(fun r -> r.Reg.id = 0 && r.Reg.cls = Reg.Int_reg)
  in
  let flagged =
    Array.to_list (Webs.webs webs)
    |> List.filter (fun w -> w.Webs.spill_temp)
  in
  Alcotest.(check int) "exactly the marked vreg's web" 1 (List.length flagged)

let webs_rebuild_noop_is_identity () =
  (* rebuilding through an edit that touched nothing must reproduce the
     table bit for bit — ids, partition, site lists — because surviving
     webs keep the canonical min-def-id numbering *)
  let src =
    {| proc f(n: int) : int {
         var s: int; var i: int;
         s = 0;
         for i = 1 to n { s = s + i * n; }
         return s;
       } |}
  in
  let p = List.hd (Codegen.compile_source src) in
  let cfg = Cfg.build p.Proc.code in
  let webs = Webs.build p cfg ~is_spill_vreg:(fun _ -> false) in
  let n_old = Array.length p.Proc.code in
  let edit =
    { Webs.instr_map = Array.init n_old (fun i -> i);
      retired = Array.make (Webs.n_webs webs) false;
      new_temp_regs = [] }
  in
  let rebuilt, old_to_new = Webs.rebuild p ~old:webs edit in
  Alcotest.(check int) "same web count" (Webs.n_webs webs)
    (Webs.n_webs rebuilt);
  Alcotest.(check (list int)) "identity renumbering"
    (List.init (Webs.n_webs webs) (fun i -> i))
    (Array.to_list old_to_new);
  Alcotest.(check bool) "web tables equal" true
    (Webs.webs rebuilt = Webs.webs webs);
  Array.iteri
    (fun i (_ : Proc.node) ->
      Alcotest.(check (list int))
        (Printf.sprintf "uses at %d" i)
        (Webs.uses_at webs i) (Webs.uses_at rebuilt i);
      Alcotest.(check (list int))
        (Printf.sprintf "defs at %d" i)
        (Webs.defs_at webs i) (Webs.defs_at rebuilt i))
    p.Proc.code

let suites =
  [ ( "analysis.liveness",
      [ Alcotest.test_case "straight line" `Quick liveness_straight_line;
        Alcotest.test_case "branch" `Quick liveness_branch;
        Alcotest.test_case "loop" `Quick liveness_loop;
        qtest prop_liveness_matches_naive ] );
    ( "analysis.liveness_update",
      [ Alcotest.test_case "propagates to clean blocks" `Quick
          update_propagates_to_clean_blocks;
        Alcotest.test_case "retires ids everywhere" `Quick
          update_retires_ids_everywhere;
        Alcotest.test_case "noop is identity" `Quick update_noop_is_identity;
        qtest prop_update_extremes_match_compute ] );
    ( "analysis.dominators",
      [ Alcotest.test_case "diamond" `Quick dominators_diamond;
        qtest prop_dominators_match_naive ] );
    ( "analysis.loops",
      [ Alcotest.test_case "nesting agrees with codegen" `Quick
          loops_nesting_agrees_with_codegen;
        qtest prop_loop_depth_matches_syntactic ] );
    ( "analysis.webs",
      [ Alcotest.test_case "split disjoint lifetimes" `Quick
          webs_split_disjoint_lifetimes;
        Alcotest.test_case "join at merge" `Quick webs_join_at_merge;
        Alcotest.test_case "args have entry defs" `Quick
          webs_args_have_entry_defs;
        Alcotest.test_case "spill temp flag" `Quick webs_spill_temp_flag;
        Alcotest.test_case "rebuild noop is identity" `Quick
          webs_rebuild_noop_is_identity ] ) ]
