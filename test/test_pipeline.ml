(* Tests for the explicit pass pipeline (Ra_core.Pipeline): the
   decomposition of the old monolithic allocate loop must reproduce the
   pre-refactor allocator's results exactly, spill-group emission must
   be deterministic by construction, and every execution mode (jobs,
   edge cache, incrementality) must agree on everything observable. *)

open Ra_ir
open Ra_core

let qtest = QCheck_alcotest.to_alcotest

let machine_k ?(flt = 8) k =
  { (Machine.with_int_regs Machine.rt_pc k) with Machine.flt_regs = flt }

let compile src =
  let procs = Codegen.compile_source src in
  Ra_opt.Opt.optimize_all procs;
  procs

let heuristics = [ Heuristic.Chaitin; Heuristic.Briggs; Heuristic.Matula ]

(* the classic three plus the worklist-driven fourth; [heuristics] keeps
   its original order because [Golden_alloc.expected] interleaves on it *)
let all_heuristics = heuristics @ [ Heuristic.Irc ]

(* ---- golden: the whole suite against the pre-refactor seed ---- *)

(* Re-allocate every suite routine x heuristic x +/-coalesce and render
   each outcome in the exact format of [Golden_alloc.expected] — lines
   captured from the seed allocator before the pipeline refactor. Any
   drift in passes, live ranges, spill totals, spill cost, coalesced
   moves, or a convergence-failure message is a regression. (Rewritten
   code is deliberately not part of the fingerprint: sorting spill
   groups by representative web id permuted frame-slot numbers.) *)
let golden () =
  let machine = Machine.rt_pc in
  let got = ref [] in
  List.iter
    (fun (program : Ra_programs.Suite.program) ->
      let procs = Ra_programs.Suite.compile program in
      List.iter
        (fun (proc : Proc.t) ->
          List.iter
            (fun h ->
              List.iter
                (fun coalesce ->
                  let ctx = Context.create machine in
                  let line =
                    match
                      Allocator.allocate ~coalesce ~context:ctx machine h proc
                    with
                    | r ->
                      Printf.sprintf
                        "%s/%s/%s/coalesce=%b passes=%d live=%d spilled=%d \
                         cost=%g moves=%d"
                        program.Ra_programs.Suite.pname proc.Proc.name
                        (Heuristic.name h) coalesce
                        (List.length r.Allocator.passes)
                        r.Allocator.live_ranges r.Allocator.total_spilled
                        r.Allocator.total_spill_cost r.Allocator.moves_removed
                    | exception Allocator.Allocation_failure m ->
                      Printf.sprintf "%s/%s/%s/coalesce=%b FAIL %s"
                        program.Ra_programs.Suite.pname proc.Proc.name
                        (Heuristic.name h) coalesce m
                  in
                  got := line :: !got)
                [ true; false ])
            heuristics)
        procs)
    Ra_programs.Suite.all;
  Alcotest.(check (list string))
    "every routine x heuristic x coalesce matches the seed allocator"
    Golden_alloc.expected (List.rev !got)

(* The same sweep for the irc heuristic against its own pinned block.
   Beyond drift detection this encodes two invariants: coalesce=false
   lines equal the briggs block of [Golden_alloc.expected] line for line
   (the worklist engine with no moves degenerates to briggs exactly),
   and no coalesce=true line spills more than its coalesce=false twin
   (conservative coalescing never costs spills). The run is verified
   end to end: RA_VERIFY-grade lint/assignment checks on every cell. *)
let golden_irc () =
  let machine = Machine.rt_pc in
  let got = ref [] in
  List.iter
    (fun (program : Ra_programs.Suite.program) ->
      let procs = Ra_programs.Suite.compile program in
      List.iter
        (fun (proc : Proc.t) ->
          List.iter
            (fun coalesce ->
              let ctx = Context.create machine in
              let line =
                match
                  Allocator.allocate ~coalesce ~verify:true ~context:ctx
                    machine Heuristic.Irc proc
                with
                | r ->
                  Printf.sprintf
                    "%s/%s/irc/coalesce=%b passes=%d live=%d spilled=%d \
                     cost=%g moves=%d"
                    program.Ra_programs.Suite.pname proc.Proc.name coalesce
                    (List.length r.Allocator.passes)
                    r.Allocator.live_ranges r.Allocator.total_spilled
                    r.Allocator.total_spill_cost r.Allocator.moves_removed
                | exception Allocator.Allocation_failure m ->
                  Printf.sprintf "%s/%s/irc/coalesce=%b FAIL %s"
                    program.Ra_programs.Suite.pname proc.Proc.name coalesce m
              in
              got := line :: !got)
            [ true; false ])
        procs)
    Ra_programs.Suite.all;
  Alcotest.(check (list string))
    "every routine x irc x coalesce matches the pinned outcomes"
    Golden_alloc.expected_irc (List.rev !got)

(* ---- spill-group determinism ---- *)

(* [Pipeline.spill_groups] historically materialized groups by
   [Hashtbl.fold], coupling spill-code insertion order (and so frame
   slot numbering) to hash-bucket layout. It must now order groups by
   ascending representative web id, independent of which member ids the
   coloring happened to mark. *)
let spill_groups_sorted () =
  let proc = List.hd (compile Test_context.spilling_src) in
  let machine = machine_k 3 in
  let cfg = Cfg.build proc.Proc.code in
  let webs =
    Ra_analysis.Webs.build proc cfg ~is_spill_vreg:(fun _ -> false)
  in
  let built = Build.build machine proc cfg ~webs ~coalesce:true () in
  let g = Build.graph_of_class built Reg.Int_reg in
  let k = Ra_core.Igraph.n_precolored g in
  let n = Ra_core.Igraph.n_nodes g in
  Alcotest.(check bool) "spilling program has colorable-node surplus" true
    (n - k >= 2);
  let all_nodes = List.init (n - k) (fun i -> k + i) in
  let check nodes =
    let groups = Pipeline.spill_groups built Reg.Int_reg nodes in
    let reps =
      List.map
        (fun group ->
          match group with
          | [] -> Alcotest.fail "empty spill group"
          | w :: _ ->
            let rep = Ra_support.Union_find.find built.Build.alias w in
            (* every member of the group shares the representative *)
            List.iter
              (fun m ->
                Alcotest.(check int) "member in rep's class" rep
                  (Ra_support.Union_find.find built.Build.alias m))
              group;
            rep)
        groups
    in
    Alcotest.(check (list int)) "groups ascend by representative web id"
      (List.sort_uniq Int.compare reps) reps;
    (* same decision handed over in any order yields the same groups *)
    Alcotest.(check (list (list int))) "order of the decision is irrelevant"
      groups
      (Pipeline.spill_groups built Reg.Int_reg (List.rev nodes))
  in
  check all_nodes;
  check (List.filteri (fun i _ -> i mod 2 = 0) all_nodes)

(* ---- the Allocator facade over the pipeline ---- *)

let facade_equals_pipeline () =
  let proc = List.hd (compile Test_context.spilling_src) in
  let machine = machine_k 3 in
  let via_allocator =
    Allocator.allocate ~context:(Context.create machine) machine
      Heuristic.Briggs proc
  in
  let cfgn =
    { Pipeline.coalesce = true;
      max_passes = 32;
      spill_base = Spill_costs.default_base;
      rematerialize = true;
      verify = false }
  in
  let via_pipeline =
    Pipeline.run cfgn ~context:(Context.create machine) machine
      Heuristic.Briggs proc
  in
  Alcotest.(check int) "same spills" via_pipeline.Pipeline.total_spilled
    via_allocator.Allocator.total_spilled;
  Alcotest.(check string) "same code"
    (Proc.to_string via_pipeline.Pipeline.proc)
    (Proc.to_string via_allocator.Allocator.proc);
  (* pass_record is literally the pipeline's record type *)
  Alcotest.(check bool) "same pass records" true
    (via_allocator.Allocator.passes
     |> List.map2
          (fun (a : Pipeline.pass_record) (b : Allocator.pass_record) ->
            { a with Pipeline.build_time = 0.; coalesce_time = 0.;
              simplify_time = 0.; color_time = 0.; spill_time = 0. }
            = { b with Allocator.build_time = 0.; coalesce_time = 0.;
                simplify_time = 0.; color_time = 0.; spill_time = 0. })
          via_pipeline.Pipeline.passes
     |> List.for_all Fun.id);
  Alcotest.(check bool) "stage list covers the documented chain" true
    (List.map fst Pipeline.stages
     = Ra_support.Phase.
         [ Lint; Build; Coalesce; Simplify; Color; Spill_elect; Spill_insert;
           Rewrite; Verify ])

(* ---- cross-mode identity ---- *)

let strip_times (p : Allocator.pass_record) =
  ( p.Allocator.pass_index,
    p.Allocator.webs_initial,
    p.Allocator.webs_coalesced,
    p.Allocator.nodes_int,
    p.Allocator.nodes_flt,
    p.Allocator.edges_int,
    p.Allocator.edges_flt,
    p.Allocator.spilled,
    p.Allocator.spill_cost )

let fingerprint (r : Allocator.result) =
  ( List.map strip_times r.Allocator.passes,
    r.Allocator.live_ranges,
    r.Allocator.total_spilled,
    r.Allocator.total_spill_cost,
    r.Allocator.moves_removed,
    Proc.to_string r.Allocator.proc )

let prop_pipeline_mode_invariant =
  (* The refactored pipeline over every execution mode — sequential,
     pooled builds, edge cache off, incrementality off — produces one
     observable allocation per (program, heuristic, coalesce): same
     pass counters, totals, and rewritten code, or the same failure. *)
  let pool = lazy (Ra_support.Pool.create ~jobs:4) in
  QCheck.Test.make
    ~name:
      "pipeline is mode-invariant (jobs 1/4 x edge cache x incremental, \
       all heuristics, with/without coalescing)"
    ~count:10
    QCheck.(triple (int_bound 1000000) (int_range 5 30) (int_range 3 10))
    (fun (seed, size, k) ->
      let k = max 3 k and size = max 1 size in
      let src = Progen.generate ~seed ~size in
      let procs = compile src in
      let machine = machine_k ~flt:4 k in
      List.for_all
        (fun h ->
          let max_passes = if h = Heuristic.Matula then 6 else 32 in
          let contexts =
            [ Context.create ~jobs:1 machine;
              Context.create ~pool:(Lazy.force pool) machine;
              Context.create ~jobs:1 ~edge_cache:false machine;
              Context.create ~jobs:1 ~incremental:false machine ]
          in
          List.for_all
            (fun coalesce ->
              List.for_all
                (fun p ->
                  let alloc ctx =
                    match
                      Allocator.allocate ~coalesce ~max_passes ~context:ctx
                        machine h p
                    with
                    | r -> Some (fingerprint r)
                    | exception Allocator.Allocation_failure _ -> None
                  in
                  match List.map alloc contexts with
                  | [] -> true
                  | first :: rest -> List.for_all (( = ) first) rest)
                procs)
            [ true; false ])
        all_heuristics)

let prop_irc_conservative_never_spills_more =
  (* The conservative-coalescing guarantee, as a property over synthetic
     programs (the suite half is encoded in the irc golden block): for
     the irc heuristic, coalescing on never spills more than coalescing
     off on the same program. The pipeline enforces this globally with
     its no-coalesce fallback rerun (the per-pass move-blind retry alone
     is not enough: Conservative-build merges shift which webs get
     elected, and diverged spill code can cost a spill on a later pass —
     a shrunk generator program found exactly that). Verification is on,
     so every allocation in the sample is also RA_VERIFY-checked end to
     end. *)
  QCheck.Test.make
    ~name:
      "irc with coalescing never spills more than --no-coalesce \
       (synthetics, verified)"
    ~count:10
    QCheck.(triple (int_bound 1000000) (int_range 5 30) (int_range 3 10))
    (fun (seed, size, k) ->
      let k = max 3 k and size = max 1 size in
      let src = Progen.generate ~seed ~size in
      let procs = compile src in
      let machine = machine_k ~flt:4 k in
      List.for_all
        (fun p ->
          let alloc coalesce =
            match
              Allocator.allocate ~coalesce ~verify:true
                ~context:(Context.create ~jobs:1 machine) machine
                Heuristic.Irc p
            with
            | r -> Some r.Allocator.total_spilled
            | exception Allocator.Allocation_failure _ -> None
          in
          match alloc true, alloc false with
          | Some w, Some wo -> w <= wo
          | (Some _ | None), _ -> true)
        procs)

(* The one (routine, heuristic) cell of the benchmark suite that cannot
   allocate: cost-blind Matula on EULER's euler_main. Smallest-last
   never consults spill costs, so from pass 2 on it keeps electing the
   unspillable spill temporaries pass 1 introduced — the degradation
   §2.3 of the paper warns a cost-blind order invites. This pins the
   failure down as *expected* (the bench probe excludes the routine and
   records this reason): if Matula ever learns to allocate euler_main
   the test fails and the exclusion should be deleted, and if the
   diagnostic loses its Matula hint the message check below catches
   it. The cost-aware heuristics must keep allocating the same routine. *)
let matula_euler_main_expected_failure () =
  let machine = Machine.rt_pc in
  let euler = Ra_programs.Suite.find "EULER" in
  let proc =
    List.find
      (fun (p : Proc.t) -> p.name = "euler_main")
      (Ra_programs.Suite.compile euler)
  in
  List.iter
    (fun h ->
      match
        Allocator.allocate ~context:(Context.create ~jobs:1 machine) machine
          h proc
      with
      | r ->
        Alcotest.(check string)
          (Heuristic.name h ^ " allocates euler_main")
          "euler_main" r.Allocator.proc.Proc.name
      | exception Pipeline.Allocation_failure m ->
        Alcotest.failf "%s unexpectedly failed on euler_main: %s"
          (Heuristic.name h) m)
    [ Heuristic.Chaitin; Heuristic.Briggs; Heuristic.Irc ];
  match
    Allocator.allocate ~context:(Context.create ~jobs:1 machine) machine
      Heuristic.Matula proc
  with
  | _ -> Alcotest.fail "matula now allocates euler_main: drop this exclusion"
  | exception Pipeline.Allocation_failure m ->
    let contains_sub s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "names the routine" true
      (contains_sub m "euler_main");
    Alcotest.(check bool) "diagnostic explains the cost-blind order" true
      (contains_sub m "matula" && contains_sub m "unspillable")

let suites =
  [ ( "core.pipeline",
      [ Alcotest.test_case "golden: suite matches pre-refactor seed" `Slow
          golden;
        Alcotest.test_case "golden: suite x irc matches pinned outcomes"
          `Slow golden_irc;
        Alcotest.test_case "matula x euler_main tracked failure" `Quick
          matula_euler_main_expected_failure;
        Alcotest.test_case "spill groups deterministic by construction"
          `Quick spill_groups_sorted;
        Alcotest.test_case "allocator facade equals pipeline" `Quick
          facade_equals_pipeline;
        qtest prop_pipeline_mode_invariant;
        qtest prop_irc_conservative_never_spills_more ] ) ]
