(* Tests for the translation-validation layer (lib/check): linter unit
   tests on hand-built ill-formed procedures, mutation tests that corrupt
   a correct allocation and assert the verifier catches each corruption
   with the expected diagnostic, a sweep proving the whole benchmark
   suite passes lint + verification under every heuristic and ablation,
   and a random-program property. *)

open Ra_ir
open Ra_core
open Ra_check

let qtest = QCheck_alcotest.to_alcotest

let ri = Reg.int
let rf = Reg.flt

let regfile_of (machine : Machine.t) : Verify_alloc.regfile =
  { Verify_alloc.k_int = Machine.regs machine Reg.Int_reg;
    k_flt = Machine.regs machine Reg.Flt_reg;
    caller_save_int = Machine.caller_save machine Reg.Int_reg;
    caller_save_flt = Machine.caller_save machine Reg.Flt_reg }

let rt_pc = regfile_of Machine.rt_pc

(* Hand-built procedures. The vreg counters are bumped past every id the
   tests mention so the linter's dense numbering covers them. *)
let vproc ?(name = "t") ?(args = []) ?(ret_cls = None) ?(slots = 0) code =
  let p = Proc.create ~name ~args ~ret_cls in
  p.Proc.code <-
    Array.of_list (List.map (fun ins -> { Proc.ins; depth = 0 }) code);
  p.Proc.next_int <- 8;
  p.Proc.next_flt <- 8;
  p.Proc.spill_slots <- slots;
  p

let aproc ?name ?args ?(ret_cls = Some Reg.Int_reg) ?slots code =
  let p = vproc ?name ?args ~ret_cls ?slots code in
  p.Proc.allocated <- true;
  p

let error_report diags =
  String.concat "\n" (List.map Diagnostic.to_string (Diagnostic.errors diags))

let check_no_errors what diags =
  Alcotest.(check string) what "" (error_report diags)

let check_flags name diags =
  Alcotest.(check bool)
    (Printf.sprintf "%s reported" name)
    true
    (List.exists
       (fun d -> Diagnostic.is_error d && d.Diagnostic.check = name)
       diags)

let check_warns name diags =
  Alcotest.(check bool)
    (Printf.sprintf "%s warning reported" name)
    true
    (List.exists
       (fun d -> (not (Diagnostic.is_error d)) && d.Diagnostic.check = name)
       diags)

(* ---- linter unit tests ---- *)

let lint_clean () =
  let p =
    vproc ~ret_cls:(Some Reg.Int_reg)
      [ Instr.Li (ri 0, 1);
        Instr.Li (ri 1, 2);
        Instr.Binop (Instr.Iadd, ri 2, ri 0, ri 1);
        Instr.Ret (Some (ri 2)) ]
  in
  check_no_errors "well-formed proc lints clean" (Lint.run p)

let lint_empty () = check_flags "empty-proc" (Lint.run (vproc []))

let lint_undefined_label () =
  check_flags "undefined-label"
    (Lint.run (vproc [ Instr.Li (ri 0, 1); Instr.Br 3 ]))

let lint_duplicate_label () =
  check_flags "duplicate-label"
    (Lint.run
       (vproc
          [ Instr.Label 0; Instr.Li (ri 0, 1); Instr.Label 0; Instr.Ret None ]))

let lint_class_mismatch () =
  check_flags "class-mismatch"
    (Lint.run
       (vproc
          [ Instr.Li (ri 0, 1);
            Instr.Binop (Instr.Iadd, rf 0, ri 0, ri 0);
            Instr.Ret None ]))

let lint_use_before_def () =
  let p =
    vproc ~ret_cls:(Some Reg.Int_reg)
      [ Instr.Li (ri 0, 1);
        Instr.Binop (Instr.Iadd, ri 1, ri 0, ri 2);
        Instr.Ret (Some (ri 1)) ]
  in
  check_flags "use-before-def" (Lint.run p)

let lint_use_before_def_one_path () =
  (* defined on one branch only: still flagged (may-analysis) *)
  let p =
    vproc ~args:[ ri 0 ] ~ret_cls:(Some Reg.Int_reg)
      [ Instr.Li (ri 1, 0);
        Instr.Cbr (Instr.Lt, ri 0, ri 1, 1, 2);
        Instr.Label 1;
        Instr.Li (ri 2, 7);
        Instr.Br 2;
        Instr.Label 2;
        Instr.Ret (Some (ri 2)) ]
  in
  check_flags "use-before-def" (Lint.run p)

let lint_dom_use_before_def_one_path () =
  (* the same diamond through the dominator-based check: the entry
     (pseudo-)definition of ri 2 reaches the join, so no real definition
     dominates the use *)
  let p =
    vproc ~args:[ ri 0 ] ~ret_cls:(Some Reg.Int_reg)
      [ Instr.Li (ri 1, 0);
        Instr.Cbr (Instr.Lt, ri 0, ri 1, 1, 2);
        Instr.Label 1;
        Instr.Li (ri 2, 7);
        Instr.Br 2;
        Instr.Label 2;
        Instr.Ret (Some (ri 2)) ]
  in
  check_flags "dom-use-before-def" (Lint.run p)

let lint_dom_use_never_defined () =
  (* no definition at all: only the entry definition reaches the use *)
  let p =
    vproc ~ret_cls:(Some Reg.Int_reg)
      [ Instr.Li (ri 0, 1);
        Instr.Binop (Instr.Iadd, ri 1, ri 0, ri 2);
        Instr.Ret (Some (ri 1)) ]
  in
  check_flags "dom-use-before-def" (Lint.run p)

let lint_dom_use_both_branches_clean () =
  (* mutation control: defining ri 2 on *both* branches must silence the
     check even though neither defining block dominates the join *)
  let p =
    vproc ~args:[ ri 0 ] ~ret_cls:(Some Reg.Int_reg)
      [ Instr.Li (ri 1, 0);
        Instr.Cbr (Instr.Lt, ri 0, ri 1, 1, 2);
        Instr.Label 1;
        Instr.Li (ri 2, 7);
        Instr.Br 3;
        Instr.Label 2;
        Instr.Li (ri 2, 9);
        Instr.Br 3;
        Instr.Label 3;
        Instr.Ret (Some (ri 2)) ]
  in
  check_no_errors "both-branch definitions lint clean" (Lint.run p)

let lint_unreachable_block () =
  (* a block only reachable from itself: flagged via the dominator
     computation's reachability, as a warning *)
  let p =
    vproc ~ret_cls:(Some Reg.Int_reg)
      [ Instr.Li (ri 0, 1);
        Instr.Ret (Some (ri 0));
        Instr.Label 5;
        Instr.Li (ri 1, 2);
        Instr.Br 5 ]
  in
  check_warns "unreachable-block" (Lint.run p)

let lint_ret_arity () =
  check_flags "ret-arity"
    (Lint.run
       (vproc ~ret_cls:(Some Reg.Int_reg) [ Instr.Li (ri 0, 1); Instr.Ret None ]))

let lint_slot_class () =
  check_flags "slot-class"
    (Lint.run
       (vproc ~slots:1
          [ Instr.Li (ri 0, 1);
            Instr.Spill_st (0, ri 0);
            Instr.Spill_ld (rf 0, 0);
            Instr.Ret None ]))

let lint_slot_range () =
  check_flags "slot-range"
    (Lint.run
       (vproc ~slots:1
          [ Instr.Li (ri 0, 1); Instr.Spill_st (3, ri 0); Instr.Ret None ]))

let lint_args_count_as_defined () =
  let p =
    vproc ~args:[ ri 0; rf 0 ] ~ret_cls:(Some Reg.Flt_reg)
      [ Instr.Unop (Instr.Itof, rf 1, ri 0);
        Instr.Binop (Instr.Fadd, rf 2, rf 1, rf 0);
        Instr.Ret (Some (rf 2)) ]
  in
  check_no_errors "arguments are defined on entry" (Lint.run p)

(* ---- mutation tests: corrupt a correct allocation ---- *)

(* A correctly-allocated toy: stash R0 in slot 0, reuse R0, reload into
   R1, add. Every mutation below breaks exactly one invariant. *)
let spill_code =
  [ Instr.Li (ri 0, 1);
    Instr.Spill_st (0, ri 0);
    Instr.Li (ri 0, 2);
    Instr.Spill_ld (ri 1, 0);
    Instr.Binop (Instr.Iadd, ri 2, ri 0, ri 1);
    Instr.Ret (Some (ri 2)) ]

let verify_clean_baseline () =
  check_no_errors "correct allocation verifies clean"
    (Verify_alloc.run ~regfile:rt_pc (aproc ~slots:1 spill_code))

let mutation_dropped_reload () =
  (* delete the spld: R1 is read undefined *)
  let code = List.filter (function Instr.Spill_ld _ -> false | _ -> true)
      spill_code in
  check_flags "undefined-read"
    (Verify_alloc.run ~regfile:rt_pc (aproc ~slots:1 code))

let mutation_retargeted_reload () =
  (* reload lands in R3 instead of R1: R1 is read undefined *)
  let code =
    List.map
      (function Instr.Spill_ld (_, s) -> Instr.Spill_ld (ri 3, s) | i -> i)
      spill_code
  in
  check_flags "undefined-read"
    (Verify_alloc.run ~regfile:rt_pc (aproc ~slots:1 code))

let mutation_load_before_store () =
  (* hoist the reload above the store: slot 0 is read undefined *)
  let code =
    [ Instr.Li (ri 0, 1);
      Instr.Spill_ld (ri 1, 0);
      Instr.Spill_st (0, ri 0);
      Instr.Li (ri 0, 2);
      Instr.Binop (Instr.Iadd, ri 2, ri 0, ri 1);
      Instr.Ret (Some (ri 2)) ]
  in
  check_flags "undefined-read"
    (Verify_alloc.run ~regfile:rt_pc (aproc ~slots:1 code))

let mutation_branch_to_missing_block () =
  let good =
    [ Instr.Li (ri 0, 1); Instr.Br 1; Instr.Label 1; Instr.Ret (Some (ri 0)) ]
  in
  check_no_errors "baseline branch lints clean" (Lint.run (aproc good));
  let bad =
    List.map (function Instr.Br 1 -> Instr.Br 9 | i -> i) good
  in
  check_flags "undefined-label" (Lint.run (aproc bad))

let mutation_caller_save_across_call () =
  let cs = List.hd rt_pc.Verify_alloc.caller_save_int in
  let safe =
    (* a callee-save register: any id outside the caller-save list *)
    List.find
      (fun i -> not (List.mem i rt_pc.Verify_alloc.caller_save_int))
      (List.init rt_pc.Verify_alloc.k_int Fun.id)
  in
  let code hold =
    [ Instr.Li (ri hold, 1);
      Instr.Call { callee = "g"; args = []; ret = Some (ri safe) };
      Instr.Binop (Instr.Iadd, ri safe, ri hold, ri safe);
      Instr.Ret (Some (ri safe)) ]
  in
  (* held in a callee-save register: fine *)
  let ok =
    List.filter
      (fun (d : Diagnostic.t) -> d.check = "caller-save-across-call")
      (Verify_alloc.run ~regfile:rt_pc (aproc (code safe)))
  in
  Alcotest.(check int) "callee-save across call accepted" 0 (List.length ok);
  (* swapped into a caller-save register: caught *)
  check_flags "caller-save-across-call"
    (Verify_alloc.run ~regfile:rt_pc (aproc (code cs)))

let mutation_register_out_of_range () =
  let code =
    [ Instr.Li (ri (rt_pc.Verify_alloc.k_int + 4), 1); Instr.Ret None ]
  in
  check_flags "reg-range"
    (Verify_alloc.run ~regfile:rt_pc (aproc ~ret_cls:None code))

let mutation_swapped_assignment () =
  (* Corrupt the coloring, not the code: two simultaneously-live webs
     forced onto one register must be caught by the assignment check. *)
  let src =
    {| proc f(a: int, b: int) : int {
         var s: int; var i: int;
         s = b;
         for i = 1 to a { s = s + i * b; }
         return s;
       } |}
  in
  let p = List.hd (Codegen.compile_source src) in
  let cfg = Cfg.build p.Proc.code in
  let webs = Ra_analysis.Webs.build p cfg ~is_spill_vreg:(fun _ -> false) in
  let n = Ra_analysis.Webs.n_webs webs in
  let alias = Ra_support.Union_find.create n in
  (* a trivially-correct coloring: every web its own register, counted
     per class (the toy has far fewer webs than registers) *)
  let color = Array.make n 0 in
  let next = Hashtbl.create 2 in
  for w = 0 to n - 1 do
    let cls = (Ra_analysis.Webs.web webs w).Ra_analysis.Webs.cls in
    let c = Option.value ~default:0 (Hashtbl.find_opt next cls) in
    color.(w) <- c;
    Hashtbl.replace next cls (c + 1)
  done;
  check_no_errors "distinct colors pass the assignment check"
    (Verify_alloc.check_assignment ~regfile:rt_pc p cfg webs ~alias
       ~color:(fun w -> color.(w)));
  check_flags "interference"
    (Verify_alloc.check_assignment ~regfile:rt_pc p cfg webs ~alias
       ~color:(fun _ -> 0))

(* ---- the benchmark suite under every heuristic and ablation ---- *)

let heuristics = [ Heuristic.Chaitin; Heuristic.Briggs; Heuristic.Matula ]

let suite_sweep () =
  List.iter
    (fun (prog : Ra_programs.Suite.program) ->
      let procs = Ra_programs.Suite.compile prog in
      List.iter
        (fun (p : Proc.t) ->
          check_no_errors
            (Printf.sprintf "%s/%s input lint" prog.Ra_programs.Suite.pname
               p.Proc.name)
            (Lint.run p);
          List.iter
            (fun h ->
              List.iter
                (fun (coalesce, rematerialize) ->
                  (* Matula is cost-blind and may legitimately diverge;
                     cap it and accept only that failure mode *)
                  let max_passes =
                    if h = Heuristic.Matula then 6 else 32
                  in
                  match
                    Allocator.allocate ~coalesce ~rematerialize ~max_passes
                      ~verify:true Machine.rt_pc h p
                  with
                  | r ->
                    let label =
                      Printf.sprintf "%s/%s %s coalesce:%b remat:%b"
                        prog.Ra_programs.Suite.pname p.Proc.name
                        (Heuristic.name h) coalesce rematerialize
                    in
                    check_no_errors (label ^ " output lint")
                      (Lint.run r.Allocator.proc);
                    check_no_errors (label ^ " output verify")
                      (Verify_alloc.run ~regfile:rt_pc r.Allocator.proc)
                  | exception Allocator.Allocation_failure msg ->
                    if h <> Heuristic.Matula then
                      Alcotest.failf "%s/%s %s: %s"
                        prog.Ra_programs.Suite.pname p.Proc.name
                        (Heuristic.name h) msg)
                [ true, true; true, false; false, true; false, false ])
            heuristics)
        procs)
    Ra_programs.Suite.all

(* ---- random programs ---- *)

let prop_random_allocations_verify =
  QCheck.Test.make
    ~name:"random programs allocate verified under chaitin and briggs"
    ~count:15
    QCheck.(triple (int_bound 1000000) (int_range 5 30) (int_range 4 16))
    (fun (seed, size, k) ->
      let k = max 4 k and size = max 1 size in
      let src = Progen.generate ~seed ~size in
      let procs = Codegen.compile_source src in
      let machine = Machine.with_int_regs Machine.rt_pc k in
      let regfile = regfile_of machine in
      List.for_all
        (fun h ->
          List.for_all
            (fun p ->
              (* verify:true makes the allocator raise on any violation;
                 re-running the output checks here asserts the public
                 entry points agree *)
              let r = Allocator.allocate ~verify:true machine h p in
              (not (Diagnostic.has_errors (Lint.run r.Allocator.proc)))
              && not
                   (Diagnostic.has_errors
                      (Verify_alloc.run ~regfile r.Allocator.proc)))
            procs)
        [ Heuristic.Chaitin; Heuristic.Briggs ])

let suites =
  [ ( "check.lint",
      [ Alcotest.test_case "clean proc" `Quick lint_clean;
        Alcotest.test_case "empty proc" `Quick lint_empty;
        Alcotest.test_case "undefined label" `Quick lint_undefined_label;
        Alcotest.test_case "duplicate label" `Quick lint_duplicate_label;
        Alcotest.test_case "class mismatch" `Quick lint_class_mismatch;
        Alcotest.test_case "use before def" `Quick lint_use_before_def;
        Alcotest.test_case "use before def on one path" `Quick
          lint_use_before_def_one_path;
        Alcotest.test_case "dom use before def on one path" `Quick
          lint_dom_use_before_def_one_path;
        Alcotest.test_case "dom use never defined" `Quick
          lint_dom_use_never_defined;
        Alcotest.test_case "dom use defined on both branches" `Quick
          lint_dom_use_both_branches_clean;
        Alcotest.test_case "unreachable block" `Quick lint_unreachable_block;
        Alcotest.test_case "ret arity" `Quick lint_ret_arity;
        Alcotest.test_case "slot class" `Quick lint_slot_class;
        Alcotest.test_case "slot range" `Quick lint_slot_range;
        Alcotest.test_case "args defined on entry" `Quick
          lint_args_count_as_defined ] );
    ( "check.mutations",
      [ Alcotest.test_case "clean baseline" `Quick verify_clean_baseline;
        Alcotest.test_case "dropped reload" `Quick mutation_dropped_reload;
        Alcotest.test_case "retargeted reload" `Quick
          mutation_retargeted_reload;
        Alcotest.test_case "load before store" `Quick
          mutation_load_before_store;
        Alcotest.test_case "branch to missing block" `Quick
          mutation_branch_to_missing_block;
        Alcotest.test_case "caller-save across call" `Quick
          mutation_caller_save_across_call;
        Alcotest.test_case "register out of range" `Quick
          mutation_register_out_of_range;
        Alcotest.test_case "swapped assignment" `Quick
          mutation_swapped_assignment ] );
    ( "check.sweep",
      [ Alcotest.test_case "benchmarks x heuristics x ablations" `Quick
          suite_sweep ] );
    ( "check.properties", [ qtest prop_random_allocations_verify ] ) ]
